#include "workload/genealogy.h"

#include <unordered_map>

#include "common/rng.h"
#include "exec/expr.h"
#include "exec/filter_project.h"
#include "exec/scan.h"

namespace cobra {

Status GenealogyDatabase::ColdRestart() {
  Oid next_oid = store != nullptr ? store->next_oid() : 1;
  if (buffer != nullptr) {
    COBRA_RETURN_IF_ERROR(buffer->FlushAll());
  }
  store.reset();
  buffer.reset();
  buffer = std::make_unique<BufferManager>(
      disk.get(), BufferOptions{options.buffer_frames, ReplacementKind::kLru,
                                options.retry});
  store = std::make_unique<ObjectStore>(buffer.get(), directory.get());
  store->set_next_oid(next_oid);
  disk->ResetStats();
  disk->ParkHead(0);
  if (faulty != nullptr) {
    faulty->ResetFaultState();
    faulty->set_enabled(true);
  }
  return Status::OK();
}

Result<std::unique_ptr<GenealogyDatabase>> BuildGenealogyDatabase(
    const GenealogyOptions& options) {
  if (options.num_people == 0 || options.num_cities == 0 ||
      options.people_per_residence == 0) {
    return Status::InvalidArgument("genealogy options must be positive");
  }
  auto db = std::make_unique<GenealogyDatabase>();
  db->options = options;
  if (options.faults.any()) {
    auto faulty = std::make_unique<FaultInjectingDisk>(options.faults);
    db->faulty = faulty.get();
    db->disk = std::move(faulty);
  } else {
    db->disk = std::make_unique<SimulatedDisk>();
  }
  db->buffer = std::make_unique<BufferManager>(
      db->disk.get(), BufferOptions{options.buffer_frames,
                                    ReplacementKind::kLru, options.retry});
  db->directory = std::make_unique<HashDirectory>();
  db->store =
      std::make_unique<ObjectStore>(db->buffer.get(), db->directory.get());

  Rng rng(options.seed);
  const size_t n = options.num_people;

  // Residences: one pool per city, households drawn from them.
  size_t num_residences =
      std::max<size_t>(options.num_cities,
                       (n + options.people_per_residence - 1) /
                           options.people_per_residence);
  std::vector<ObjectData> residences(num_residences);
  std::vector<std::vector<size_t>> residences_by_city(options.num_cities);
  for (size_t r = 0; r < num_residences; ++r) {
    ObjectData& res = residences[r];
    res.oid = db->store->AllocateOid();
    res.type_id = kResidenceType;
    // The first num_cities residences cover every city so that no city's
    // pool is ever empty; the rest are spread randomly.
    int32_t city = r < options.num_cities
                       ? static_cast<int32_t>(r)
                       : static_cast<int32_t>(
                             rng.NextBounded(options.num_cities));
    res.fields = {city, static_cast<int32_t>(10000 + rng.NextBounded(90000)),
                  static_cast<int32_t>(rng.NextInRange(-90000, 90000)),
                  static_cast<int32_t>(rng.NextInRange(-180000, 180000))};
    res.refs.assign(8, kInvalidOid);
    residences_by_city[city].push_back(r);
  }

  // Persons: ordered oldest-first so fathers always precede children.
  std::vector<ObjectData> persons(n);
  std::vector<int32_t> person_city(n);
  for (size_t i = 0; i < n; ++i) {
    ObjectData& person = persons[i];
    person.oid = db->store->AllocateOid();
    person.type_id = kPersonType;
    person.refs.assign(8, kInvalidOid);

    bool founder = (i == 0) || rng.NextBool(options.founder_fraction);
    size_t father = 0;
    if (!founder) {
      father = rng.NextBounded(i);
      person.refs[kPersonFatherSlot] = persons[father].oid;
    }
    int32_t city;
    if (!founder && rng.NextBool(options.same_city_fraction)) {
      city = person_city[father];
    } else {
      city = static_cast<int32_t>(rng.NextBounded(options.num_cities));
    }
    person_city[i] = city;
    const auto& pool = residences_by_city[city];
    const ObjectData& res = residences[pool[rng.NextBounded(pool.size())]];
    person.refs[kPersonResidenceSlot] = res.oid;
    person.fields = {static_cast<int32_t>(i),
                     static_cast<int32_t>(1900 + rng.NextBounded(100)),
                     static_cast<int32_t>(rng.NextBounded(1 << 30)),
                     static_cast<int32_t>(rng.NextBounded(1 << 30))};
    db->persons.push_back(person.oid);
  }

  // Physical placement.
  PageAllocator allocator;
  const size_t per_page = 9;
  auto pages_for = [per_page](size_t count) {
    return (count + per_page - 1) / per_page + 1;
  };
  if (options.clustering == Clustering::kInterObject) {
    size_t person_pages = pages_for(n);
    size_t res_pages = pages_for(num_residences);
    HeapFile person_file(db->buffer.get(),
                         allocator.AllocateExtent(person_pages), person_pages);
    HeapFile res_file(db->buffer.get(), allocator.AllocateExtent(res_pages),
                      res_pages);
    std::vector<size_t> person_order = rng.Permutation(n);
    for (size_t k = 0; k < n; ++k) {
      COBRA_ASSIGN_OR_RETURN(Oid oid,
                             db->store->InsertAtPage(persons[person_order[k]],
                                                     &person_file,
                                                     k / per_page));
      (void)oid;
    }
    std::vector<size_t> res_order = rng.Permutation(num_residences);
    for (size_t k = 0; k < num_residences; ++k) {
      COBRA_ASSIGN_OR_RETURN(
          Oid oid, db->store->InsertAtPage(residences[res_order[k]], &res_file,
                                           k / per_page));
      (void)oid;
    }
  } else {
    // Unclustered (also used for intra: person+residence interleaving is
    // the natural "intra" layout here only when households are not shared,
    // so we treat both as one dense random file).
    size_t total = n + num_residences;
    size_t file_pages = pages_for(total);
    HeapFile file(db->buffer.get(), allocator.AllocateExtent(file_pages),
                  file_pages);
    std::vector<const ObjectData*> all;
    all.reserve(total);
    for (const auto& p : persons) all.push_back(&p);
    for (const auto& r : residences) all.push_back(&r);
    rng.Shuffle(&all);
    for (size_t k = 0; k < all.size(); ++k) {
      COBRA_ASSIGN_OR_RETURN(
          Oid oid, db->store->InsertAtPage(*all[k], &file, k / per_page));
      (void)oid;
    }
  }

  // The Figure-2 template.
  TemplateNode* person = db->tmpl.AddNode("Person");
  TemplateNode* father = db->tmpl.AddNode("Father");
  TemplateNode* residence = db->tmpl.AddNode("Residence");
  TemplateNode* father_residence = db->tmpl.AddNode("FatherResidence");
  person->expected_type = kPersonType;
  father->expected_type = kPersonType;
  residence->expected_type = kResidenceType;
  father_residence->expected_type = kResidenceType;
  residence->shared = true;
  residence->sharing_degree =
      1.0 / static_cast<double>(options.people_per_residence);
  father_residence->shared = true;
  father_residence->sharing_degree = residence->sharing_degree;
  person->children.push_back({kPersonFatherSlot, father});
  person->children.push_back({kPersonResidenceSlot, residence});
  father->children.push_back({kPersonResidenceSlot, father_residence});
  db->tmpl.SetRoot(person);

  COBRA_RETURN_IF_ERROR(db->ColdRestart());
  return db;
}

Result<std::vector<Oid>> LivesCloseToFatherNaive(GenealogyDatabase* db) {
  std::vector<Oid> matches;
  for (Oid person_oid : db->persons) {
    COBRA_ASSIGN_OR_RETURN(ObjectData person, db->store->Get(person_oid));
    // lives_close_to_father, written the way a method would be: fetch the
    // father's home town first, then the person's own city.
    Oid father_oid = person.refs[kPersonFatherSlot];
    if (father_oid == kInvalidOid) continue;
    COBRA_ASSIGN_OR_RETURN(ObjectData father, db->store->Get(father_oid));
    Oid father_res_oid = father.refs[kPersonResidenceSlot];
    if (father_res_oid == kInvalidOid) continue;
    COBRA_ASSIGN_OR_RETURN(ObjectData father_res,
                           db->store->Get(father_res_oid));
    Oid res_oid = person.refs[kPersonResidenceSlot];
    if (res_oid == kInvalidOid) continue;
    COBRA_ASSIGN_OR_RETURN(ObjectData res, db->store->Get(res_oid));
    if (res.fields[kResidenceCityField] ==
        father_res.fields[kResidenceCityField]) {
      matches.push_back(person_oid);
    }
  }
  return matches;
}

std::unique_ptr<exec::Iterator> MakeLivesCloseToFatherPlan(
    GenealogyDatabase* db, const AssemblyOptions& options,
    AssemblyOperator** assembly_out) {
  std::vector<exec::Row> inputs;
  inputs.reserve(db->persons.size());
  for (Oid oid : db->persons) {
    inputs.push_back(exec::Row{exec::Value::Ref(oid)});
  }
  auto scan = std::make_unique<exec::VectorScan>(std::move(inputs));
  auto assembly = std::make_unique<AssemblyOperator>(
      std::move(scan), &db->tmpl, db->store.get(), options);
  if (assembly_out != nullptr) {
    *assembly_out = assembly.get();
  }
  // person.residence.city == person.father.residence.city; template child
  // order: root child 0 = father, child 1 = residence; father child 0 =
  // residence.
  using namespace exec;  // NOLINT: local readability for the expression tree
  ExprPtr my_city =
      ObjField(ObjChild(Col(0), 1), kResidenceCityField);
  ExprPtr father_city =
      ObjField(ObjChild(ObjChild(Col(0), 0), 0), kResidenceCityField);
  auto filter = std::make_unique<Filter>(
      std::move(assembly),
      Cmp(CmpOp::kEq, std::move(my_city), std::move(father_city)));
  return filter;
}

}  // namespace cobra
