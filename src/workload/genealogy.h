// The paper's running example (Figures 2-3): Person / Residence and the
// "lives close to father" query.
//
// A Person references a father (another Person, absent for the eldest
// generation) and a Residence; residences are *shared* by household members,
// so the Residence template nodes carry the sharing annotation.  The query
// of Figure 3 — "retrieve all people that live close to (live in the same
// city as) their father" — is provided in two forms:
//
//   * LivesCloseToFatherNaive     — method-style object-at-a-time execution
//     (toplevel_query / lives_close_to_father of Fig. 3, fetches in the
//     order the method happens to be written);
//   * MakeLivesCloseToFatherPlan  — a Volcano plan: assembly operator over
//     the Fig. 2 template feeding a Filter that compares the two cities on
//     the swizzled objects.
//
// Both return the same set of persons; the plan's I/O pattern is what the
// paper's benchmarks measure.

#ifndef COBRA_WORKLOAD_GENEALOGY_H_
#define COBRA_WORKLOAD_GENEALOGY_H_

#include <memory>
#include <vector>

#include "assembly/assembly_operator.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "common/result.h"
#include "exec/iterator.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"
#include "workload/acob.h"

namespace cobra {

inline constexpr TypeId kPersonType = 100;
inline constexpr TypeId kResidenceType = 101;

// Person object:    fields = [person id, birth year, random, random]
//                   refs[0] = father (kInvalidOid for founders)
//                   refs[1] = residence
// Residence object: fields = [city id, zip, latitude*1e3, longitude*1e3]
inline constexpr int kPersonFatherSlot = 0;
inline constexpr int kPersonResidenceSlot = 1;
inline constexpr int kResidenceCityField = 0;

struct GenealogyOptions {
  size_t num_people = 1000;
  size_t num_cities = 25;
  // Average household size (people per shared residence object).
  size_t people_per_residence = 3;
  // Probability that a person with a father lives in the father's city.
  double same_city_fraction = 0.2;
  // Probability that a person is a founder (no father reference).
  double founder_fraction = 0.25;
  Clustering clustering = Clustering::kUnclustered;
  uint64_t seed = 7;
  size_t buffer_frames = 8192;
  // Fault injection: same semantics as AcobOptions::faults (disarmed during
  // the build, armed by ColdRestart).
  FaultProfile faults = {};
  RetryPolicy retry = {};
};

struct GenealogyDatabase {
  GenealogyOptions options;
  std::unique_ptr<SimulatedDisk> disk;
  // Borrowed view of `disk` when options.faults is active; null otherwise.
  FaultInjectingDisk* faulty = nullptr;
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<HashDirectory> directory;
  std::unique_ptr<ObjectStore> store;

  std::vector<Oid> persons;

  // The Figure-2 template: Person -> {father Person -> Residence,
  // Residence}.  Template child order: index 0 = father, index 1 =
  // residence (on the root node); the father node's child 0 = residence.
  AssemblyTemplate tmpl;

  Status ColdRestart();
};

Result<std::unique_ptr<GenealogyDatabase>> BuildGenealogyDatabase(
    const GenealogyOptions& options);

// Naive execution of Figure 3: for each person, follow refs through the
// object store and evaluate the same-city test.  Returns matching OIDs in
// person order.
Result<std::vector<Oid>> LivesCloseToFatherNaive(GenealogyDatabase* db);

// Volcano plan: VectorScan(persons) -> Assembly(template) -> Filter(same
// city).  Output rows carry the assembled person object in column 0.
// The assembly operator pointer is returned through `assembly_out`
// (borrowed; owned by the plan) so callers can read its statistics.
std::unique_ptr<exec::Iterator> MakeLivesCloseToFatherPlan(
    GenealogyDatabase* db, const AssemblyOptions& options,
    AssemblyOperator** assembly_out = nullptr);

}  // namespace cobra

#endif  // COBRA_WORKLOAD_GENEALOGY_H_
