#include "workload/hypermodel.h"

#include "common/rng.h"
#include "file/heap_file.h"

namespace cobra {

size_t HyperModelNodeCount(int levels, int fanout) {
  size_t count = 0;
  size_t level_nodes = 1;
  for (int l = 0; l < levels; ++l) {
    count += level_nodes;
    level_nodes *= static_cast<size_t>(fanout);
  }
  return count;
}

Status HyperModelDatabase::ColdRestart() {
  Oid next_oid = store != nullptr ? store->next_oid() : 1;
  if (buffer != nullptr) {
    COBRA_RETURN_IF_ERROR(buffer->FlushAll());
  }
  store.reset();
  buffer.reset();
  buffer = std::make_unique<BufferManager>(
      disk.get(), BufferOptions{options.buffer_frames, ReplacementKind::kLru});
  store = std::make_unique<ObjectStore>(buffer.get(), directory.get());
  store->set_next_oid(next_oid);
  disk->ResetStats();
  disk->ParkHead(0);
  return Status::OK();
}

Result<std::unique_ptr<HyperModelDatabase>> BuildHyperModelDatabase(
    const HyperModelOptions& options) {
  if (options.levels < 1 || options.levels > 8) {
    return Status::InvalidArgument("levels must be in [1, 8]");
  }
  if (options.fanout < 1 || options.fanout > 7) {
    return Status::InvalidArgument("fanout must be in [1, 7]");
  }
  auto db = std::make_unique<HyperModelDatabase>();
  db->options = options;
  db->disk = std::make_unique<SimulatedDisk>();
  db->buffer = std::make_unique<BufferManager>(
      db->disk.get(),
      BufferOptions{options.buffer_frames, ReplacementKind::kLru});
  db->directory = std::make_unique<HashDirectory>();
  db->store =
      std::make_unique<ObjectStore>(db->buffer.get(), db->directory.get());

  Rng rng(options.seed);
  const size_t n = HyperModelNodeCount(options.levels, options.fanout);
  db->total_nodes = n;

  // Pre-assign all OIDs in BFS order: node i's children are
  // fanout*i + 1 ... fanout*i + fanout.
  std::vector<Oid> oids(n);
  for (size_t i = 0; i < n; ++i) {
    oids[i] = db->store->AllocateOid();
  }
  db->nodes = oids;
  db->root = oids[0];

  // Width of each level; level_width.back() is the leaf count.
  std::vector<size_t> level_width;
  {
    size_t width = 1;
    for (int l = 0; l < options.levels; ++l) {
      level_width.push_back(width);
      width *= static_cast<size_t>(options.fanout);
    }
  }
  // Level of node i in a complete fanout-ary BFS numbering.
  auto level_of = [&](size_t i) {
    int level = 0;
    size_t first = 0;
    size_t width = 1;
    while (i >= first + width) {
      first += width;
      width *= static_cast<size_t>(options.fanout);
      ++level;
    }
    return level;
  };

  std::vector<ObjectData> objects(n);
  for (size_t i = 0; i < n; ++i) {
    ObjectData& node = objects[i];
    node.oid = oids[i];
    node.type_id = kHyperNodeType;
    node.fields = {static_cast<int32_t>(i),
                   static_cast<int32_t>(level_of(i)),
                   static_cast<int32_t>(rng.NextBounded(10)),
                   static_cast<int32_t>(rng.NextBounded(100))};
    node.refs.assign(8, kInvalidOid);
    for (int f = 0; f < options.fanout; ++f) {
      size_t child =
          static_cast<size_t>(options.fanout) * i + 1 + static_cast<size_t>(f);
      if (child < n) {
        node.refs[f] = oids[child];
      }
    }
    // refersTo: only *interior* nodes reference a random *leaf*.  Leaves
    // have no outgoing references, so the graph is provably acyclic (which
    // shared assembly requires), and every path is at most `levels` edges
    // long, so closures are never depth-truncated and are identical no
    // matter in which order a scheduler discovers the shared leaves.
    size_t first_leaf = n - level_width.back();
    if (i < first_leaf && rng.NextBool(options.refers_to_fraction)) {
      node.refs[options.fanout] =
          oids[first_leaf + rng.NextBounded(n - first_leaf)];
    }
  }

  // Placement: random order over one dense file (HyperModel does not
  // prescribe clustering; random is the adversarial case for assembly).
  PageAllocator allocator;
  const size_t per_page = 9;
  size_t file_pages = n / per_page + 2;
  HeapFile file(db->buffer.get(), allocator.AllocateExtent(file_pages),
                file_pages);
  std::vector<size_t> order = rng.Permutation(n);
  for (size_t k = 0; k < n; ++k) {
    COBRA_ASSIGN_OR_RETURN(
        Oid oid,
        db->store->InsertAtPage(objects[order[k]], &file, k / per_page));
    (void)oid;
  }

  // Recursive closure template over children + refersTo.
  db->node_template = db->closure_tmpl.AddNode("Node");
  db->node_template->expected_type = kHyperNodeType;
  db->node_template->shared = true;  // cross-references share nodes
  db->node_template->sharing_degree = options.refers_to_fraction;
  for (int f = 0; f <= options.fanout; ++f) {
    db->node_template->children.push_back({f, db->node_template});
  }
  db->closure_tmpl.SetRoot(db->node_template);
  db->closure_tmpl.set_max_depth(options.levels + 1);

  COBRA_RETURN_IF_ERROR(db->ColdRestart());
  return db;
}

}  // namespace cobra
