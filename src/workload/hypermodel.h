// HyperModel-style workload (Anderson et al., the OODB benchmark the paper
// cites in §6 as "better suited for our system").
//
// A single large *aggregation hierarchy*: each node has `fanout` part-of
// children, plus an optional refersTo cross-reference to an earlier node —
// so the object graph is a DAG, not a tree, and cross-referenced nodes are
// genuinely shared between complex-object closures.  The benchmark
// operations COBRA reproduces are the closure traversals (assemble the
// aggregation closure of a node, sum an attribute over it).
//
// Node object (type 300):
//   fields = [sequence number, level, ten (uniform 0..9), hundred (0..99)]
//   refs[0..fanout-1] = children (kInvalidOid below the last level)
//   refs[fanout]      = refersTo (interior nodes only; targets a leaf)
//
// refersTo edges run from interior nodes to leaves only, so the data stays
// acyclic — which shared assembly requires (a cyclic *shared* component can
// never complete) — and closures are never depth-truncated, so they are
// deterministic across schedulers.

#ifndef COBRA_WORKLOAD_HYPERMODEL_H_
#define COBRA_WORKLOAD_HYPERMODEL_H_

#include <memory>
#include <vector>

#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "common/result.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {

inline constexpr TypeId kHyperNodeType = 300;
inline constexpr int kHyperSeqField = 0;
inline constexpr int kHyperLevelField = 1;
inline constexpr int kHyperTenField = 2;
inline constexpr int kHyperHundredField = 3;

struct HyperModelOptions {
  int levels = 5;   // aggregation depth; node count = (f^L - 1) / (f - 1)
  int fanout = 5;   // HyperModel's 5 (max 7: slot fanout is refersTo)
  // Fraction of nodes carrying a refersTo cross-reference.
  double refers_to_fraction = 0.3;
  uint64_t seed = 17;
  size_t buffer_frames = 16384;
};

struct HyperModelDatabase {
  HyperModelOptions options;
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<HashDirectory> directory;
  std::unique_ptr<ObjectStore> store;

  // All nodes in breadth-first order; nodes[0] is the hierarchy root.
  std::vector<Oid> nodes;
  Oid root = kInvalidOid;
  size_t total_nodes = 0;

  // Recursive closure template: every child slot and the refersTo slot
  // point back at the node type; nodes are marked shared (cross-references
  // create real sharing).  max_depth = levels + 1 so a root closure covers
  // the whole hierarchy without truncation.
  AssemblyTemplate closure_tmpl;
  TemplateNode* node_template = nullptr;

  Status ColdRestart();
};

Result<std::unique_ptr<HyperModelDatabase>> BuildHyperModelDatabase(
    const HyperModelOptions& options);

// Number of nodes in a full hierarchy of `levels` levels and `fanout`.
size_t HyperModelNodeCount(int levels, int fanout);

}  // namespace cobra

#endif  // COBRA_WORKLOAD_HYPERMODEL_H_
