#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/scan.h"

namespace cobra::exec {
namespace {

Row IntRow(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int(v));
  return row;
}

std::unique_ptr<VectorScan> Scan(std::vector<Row> rows) {
  return std::make_unique<VectorScan>(std::move(rows));
}

std::vector<AggSpec> OneAgg(AggFn fn, ExprPtr input) {
  std::vector<AggSpec> aggs;
  aggs.push_back({fn, std::move(input)});
  return aggs;
}

TEST(HashAggregateTest, GlobalCountStar) {
  HashAggregate agg(Scan({IntRow({1}), IntRow({2}), IntRow({3})}), {},
                    OneAgg(AggFn::kCount, nullptr));
  auto rows = DrainAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 3);
}

TEST(HashAggregateTest, GlobalOverEmptyInputStillOneRow) {
  HashAggregate agg(Scan({}), {}, OneAgg(AggFn::kCount, nullptr));
  auto rows = DrainAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 0);
}

TEST(HashAggregateTest, SumMinMaxAvg) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(0)});
  aggs.push_back({AggFn::kMin, Col(0)});
  aggs.push_back({AggFn::kMax, Col(0)});
  aggs.push_back({AggFn::kAvg, Col(0)});
  HashAggregate agg(Scan({IntRow({4}), IntRow({1}), IntRow({7})}), {},
                    std::move(aggs));
  auto rows = DrainAll(&agg);
  ASSERT_TRUE(rows.ok());
  const Row& row = (*rows)[0];
  EXPECT_EQ(row[0].AsInt(), 12);
  EXPECT_EQ(row[1].AsInt(), 1);
  EXPECT_EQ(row[2].AsInt(), 7);
  EXPECT_DOUBLE_EQ(row[3].AsDouble(), 4.0);
}

TEST(HashAggregateTest, GroupByPartitions) {
  // (group, value): sums per group.
  HashAggregate agg(Scan({IntRow({1, 10}), IntRow({2, 20}), IntRow({1, 5}),
                          IntRow({2, 1}), IntRow({3, 7})}),
                    [] {
                      std::vector<ExprPtr> keys;
                      keys.push_back(Col(0));
                      return keys;
                    }(),
                    OneAgg(AggFn::kSum, Col(1)));
  auto rows = DrainAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // Groups appear in first-seen order.
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
  EXPECT_EQ((*rows)[0][1].AsInt(), 15);
  EXPECT_EQ((*rows)[1][0].AsInt(), 2);
  EXPECT_EQ((*rows)[1][1].AsInt(), 21);
  EXPECT_EQ((*rows)[2][0].AsInt(), 3);
  EXPECT_EQ((*rows)[2][1].AsInt(), 7);
}

TEST(HashAggregateTest, NullsIgnoredByAggregates) {
  std::vector<Row> rows = {{Value::Int(1), Value::Int(10)},
                           {Value::Int(1), Value::Null()},
                           {Value::Int(1), Value::Int(20)}};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, Col(1)});
  aggs.push_back({AggFn::kSum, Col(1)});
  HashAggregate agg(Scan(std::move(rows)),
                    [] {
                      std::vector<ExprPtr> keys;
                      keys.push_back(Col(0));
                      return keys;
                    }(),
                    std::move(aggs));
  auto out = DrainAll(&agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0][1].AsInt(), 2);  // count skips null
  EXPECT_EQ((*out)[0][2].AsInt(), 30);
}

TEST(HashAggregateTest, SumOfNoValuesIsNull) {
  std::vector<Row> rows = {{Value::Int(1), Value::Null()}};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1)});
  aggs.push_back({AggFn::kMin, Col(1)});
  aggs.push_back({AggFn::kAvg, Col(1)});
  HashAggregate agg(Scan(std::move(rows)),
                    [] {
                      std::vector<ExprPtr> keys;
                      keys.push_back(Col(0));
                      return keys;
                    }(),
                    std::move(aggs));
  auto out = DrainAll(&agg);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE((*out)[0][1].is_null());
  EXPECT_TRUE((*out)[0][2].is_null());
  EXPECT_TRUE((*out)[0][3].is_null());
}

TEST(HashAggregateTest, NullGroupKeysMerge) {
  std::vector<Row> rows = {{Value::Null(), Value::Int(1)},
                           {Value::Null(), Value::Int(2)}};
  HashAggregate agg(Scan(std::move(rows)),
                    [] {
                      std::vector<ExprPtr> keys;
                      keys.push_back(Col(0));
                      return keys;
                    }(),
                    OneAgg(AggFn::kSum, Col(1)));
  auto out = DrainAll(&agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE((*out)[0][0].is_null());
  EXPECT_EQ((*out)[0][1].AsInt(), 3);
}

TEST(HashAggregateTest, MixedIntDoubleSumPromotes) {
  std::vector<Row> rows = {{Value::Int(1)}, {Value::Double(0.5)}};
  HashAggregate agg(Scan(std::move(rows)), {}, OneAgg(AggFn::kSum, Col(0)));
  auto out = DrainAll(&agg);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0][0].AsDouble(), 1.5);
}

TEST(HashAggregateTest, NonCountWithoutInputIsError) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, nullptr});
  HashAggregate agg(Scan({IntRow({1})}), {}, std::move(aggs));
  EXPECT_FALSE(agg.Open().ok());
}

TEST(HashAggregateTest, ManyGroups) {
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) {
    rows.push_back(IntRow({i % 97, 1}));
  }
  HashAggregate agg(Scan(std::move(rows)),
                    [] {
                      std::vector<ExprPtr> keys;
                      keys.push_back(Col(0));
                      return keys;
                    }(),
                    OneAgg(AggFn::kCount, Col(1)));
  auto out = DrainAll(&agg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 97u);
  int64_t total = 0;
  for (const Row& row : *out) {
    total += row[1].AsInt();
  }
  EXPECT_EQ(total, 10000);
}

}  // namespace
}  // namespace cobra::exec
