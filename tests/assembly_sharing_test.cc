// Shared sub-objects (§6.4) and stacked assembly (§7, Fig. 17).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"
#include "workload/genealogy.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

class SharingTest : public ::testing::Test {
 protected:
  SharingTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 512}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 256) {}

  Oid Put(TypeId type, std::vector<int32_t> fields, std::vector<Oid> refs,
          size_t page) {
    ObjectData obj;
    obj.oid = store_.AllocateOid();
    obj.type_id = type;
    obj.fields = std::move(fields);
    obj.refs = std::move(refs);
    obj.refs.resize(8, kInvalidOid);
    auto stored = store_.InsertAtPage(obj, &file_, page);
    EXPECT_TRUE(stored.ok()) << stored.status().ToString();
    return obj.oid;
  }

  std::unique_ptr<VectorScan> RootScan(const std::vector<Oid>& roots) {
    std::vector<Row> rows;
    for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
    return std::make_unique<VectorScan>(std::move(rows));
  }

  Result<std::vector<Row>> Run(const AssemblyTemplate* tmpl,
                               const std::vector<Oid>& roots,
                               AssemblyOptions options,
                               AssemblyStats* stats_out = nullptr) {
    auto op = std::make_unique<AssemblyOperator>(RootScan(roots), tmpl,
                                                 &store_, options);
    COBRA_ASSIGN_OR_RETURN(std::vector<Row> rows, exec::DrainAll(op.get()));
    if (stats_out != nullptr) *stats_out = op->stats();
    keep_alive_.push_back(std::move(op));
    return rows;
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
  std::vector<std::unique_ptr<AssemblyOperator>> keep_alive_;
};

// Template: root(1) -> shared_leaf(2), with the leaf marked shared.
struct SharedLeafTemplate {
  AssemblyTemplate tmpl;
  TemplateNode* root;
  TemplateNode* leaf;
  SharedLeafTemplate() {
    root = tmpl.AddNode("root");
    leaf = tmpl.AddNode("shared_leaf");
    root->expected_type = 1;
    leaf->expected_type = 2;
    leaf->shared = true;
    leaf->sharing_degree = 0.5;
    root->children.push_back({0, leaf});
    tmpl.SetRoot(root);
  }
};

TEST_F(SharingTest, SharedLeafLoadedOnce) {
  SharedLeafTemplate st;
  Oid shared = Put(2, {77}, {}, 5);
  Oid r1 = Put(1, {1}, {shared}, 0);
  Oid r2 = Put(1, {2}, {shared}, 1);
  Oid r3 = Put(1, {3}, {shared}, 2);
  AssemblyStats stats;
  auto rows = Run(&st.tmpl, {r1, r2, r3},
                  AssemblyOptions{.window_size = 3}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // One fetch of the shared leaf, two map hits.
  EXPECT_EQ(stats.objects_fetched, 4u);
  EXPECT_EQ(stats.shared_hits, 2u);
  // All three parents point at the *same* in-memory object (§5: not loaded
  // "into two different memory locations").
  const AssembledObject* leaf0 = (*rows)[0][0].AsObject()->children[0];
  const AssembledObject* leaf1 = (*rows)[1][0].AsObject()->children[0];
  const AssembledObject* leaf2 = (*rows)[2][0].AsObject()->children[0];
  EXPECT_EQ(leaf0, leaf1);
  EXPECT_EQ(leaf1, leaf2);
  EXPECT_EQ(leaf0->fields[0], 77);
  EXPECT_EQ(leaf0->ref_count, 3);
}

TEST_F(SharingTest, SharingStatisticsOffLoadsCopies) {
  SharedLeafTemplate st;
  Oid shared = Put(2, {77}, {}, 5);
  Oid r1 = Put(1, {1}, {shared}, 0);
  Oid r2 = Put(1, {2}, {shared}, 1);
  AssemblyStats stats;
  AssemblyOptions options;
  options.window_size = 2;
  options.use_sharing_statistics = false;  // the §6.4 ablation
  auto rows = Run(&st.tmpl, {r1, r2}, options, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(stats.objects_fetched, 4u);  // leaf fetched twice
  EXPECT_EQ(stats.shared_hits, 0u);
  EXPECT_NE((*rows)[0][0].AsObject()->children[0],
            (*rows)[1][0].AsObject()->children[0]);
}

TEST_F(SharingTest, SharedHitAcrossWindowGenerations) {
  // Window 1: the resident map still dedups across successive complex
  // objects (shared components are kept "as long as possible").
  SharedLeafTemplate st;
  Oid shared = Put(2, {9}, {}, 5);
  Oid r1 = Put(1, {1}, {shared}, 0);
  Oid r2 = Put(1, {2}, {shared}, 1);
  AssemblyStats stats;
  auto rows = Run(&st.tmpl, {r1, r2}, AssemblyOptions{.window_size = 1},
                  &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.shared_hits, 1u);
}

TEST_F(SharingTest, SharedSubtreeWithChildren) {
  // Shared mid-node with its own leaf: both complex objects must wait for
  // the shared *subtree* to finish, and both see the same complete subtree.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* mid = tmpl.AddNode("mid");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->expected_type = 1;
  mid->expected_type = 2;
  mid->shared = true;
  leaf->expected_type = 3;
  root->children.push_back({0, mid});
  mid->children.push_back({0, leaf});
  tmpl.SetRoot(root);

  Oid leaf_oid = Put(3, {123}, {}, 9);
  Oid mid_oid = Put(2, {5}, {leaf_oid}, 5);
  Oid r1 = Put(1, {1}, {mid_oid}, 0);
  Oid r2 = Put(1, {2}, {mid_oid}, 1);

  AssemblyStats stats;
  auto rows = Run(&tmpl, {r1, r2},
                  AssemblyOptions{.window_size = 2,
                                  .scheduler = SchedulerKind::kBreadthFirst},
                  &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  const AssembledObject* m0 = (*rows)[0][0].AsObject()->children[0];
  const AssembledObject* m1 = (*rows)[1][0].AsObject()->children[0];
  EXPECT_EQ(m0, m1);
  ASSERT_NE(m0->children[0], nullptr);
  EXPECT_EQ(m0->children[0]->fields[0], 123);
  // 2 roots + 1 mid + 1 leaf.
  EXPECT_EQ(stats.objects_fetched, 4u);
  EXPECT_EQ(stats.shared_hits, 1u);
}

TEST_F(SharingTest, NestedSharedComponents) {
  // shared mid -> shared leaf: completion must cascade through the nested
  // entry before any waiter is released.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* mid = tmpl.AddNode("mid");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->expected_type = 1;
  mid->expected_type = 2;
  mid->shared = true;
  leaf->expected_type = 3;
  leaf->shared = true;
  root->children.push_back({0, mid});
  mid->children.push_back({0, leaf});
  tmpl.SetRoot(root);

  Oid leaf_oid = Put(3, {7}, {}, 9);
  Oid mid_a = Put(2, {1}, {leaf_oid}, 5);
  Oid mid_b = Put(2, {2}, {leaf_oid}, 6);  // different mid, same leaf
  Oid r1 = Put(1, {1}, {mid_a}, 0);
  Oid r2 = Put(1, {2}, {mid_b}, 1);
  Oid r3 = Put(1, {3}, {mid_a}, 2);

  AssemblyStats stats;
  auto rows = Run(&tmpl, {r1, r2, r3},
                  AssemblyOptions{.window_size = 3}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // Fetches: 3 roots + mid_a + mid_b + leaf = 6.
  EXPECT_EQ(stats.objects_fetched, 6u);
  // Hits: r3's mid_a + mid_b's leaf = 2.
  EXPECT_EQ(stats.shared_hits, 2u);
  const AssembledObject* l0 = (*rows)[0][0].AsObject()->children[0]->children[0];
  const AssembledObject* l1 = (*rows)[1][0].AsObject()->children[0]->children[0];
  EXPECT_EQ(l0, l1);
}

TEST_F(SharingTest, SharedPredicateFailureAbortsAllReferencingObjects) {
  SharedLeafTemplate st;
  st.leaf->predicate = [](const ObjectData& obj) {
    return obj.fields[0] > 0;
  };
  st.leaf->selectivity = 0.5;
  Oid bad_shared = Put(2, {-1}, {}, 5);
  Oid good_shared = Put(2, {1}, {}, 6);
  Oid r1 = Put(1, {1}, {bad_shared}, 0);
  Oid r2 = Put(1, {2}, {bad_shared}, 1);
  Oid r3 = Put(1, {3}, {good_shared}, 2);
  AssemblyStats stats;
  auto rows = Run(&st.tmpl, {r1, r2, r3},
                  AssemblyOptions{.window_size = 3}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsObject()->oid, r3);
  EXPECT_EQ(stats.complex_aborted, 2u);
  // 3 roots + the failing shared leaf + the good shared leaf; the second
  // reference to the failing leaf learns the failure from the resident map.
  EXPECT_EQ(stats.objects_fetched, 5u);
}

TEST_F(SharingTest, FailedSharedEntryAbortsLaterArrivals) {
  // A complex object admitted *after* the shared component failed must
  // still abort on the resident failure record without re-fetching.
  SharedLeafTemplate st;
  st.leaf->predicate = [](const ObjectData&) { return false; };
  Oid shared = Put(2, {0}, {}, 5);
  std::vector<Oid> roots;
  for (size_t i = 0; i < 5; ++i) {
    roots.push_back(Put(1, {static_cast<int32_t>(i)}, {shared}, i));
  }
  AssemblyStats stats;
  auto rows = Run(&st.tmpl, roots, AssemblyOptions{.window_size = 2},
                  &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(stats.complex_aborted, 5u);
  // Shared leaf fetched exactly once in total.
  EXPECT_EQ(stats.objects_fetched, 6u);
}

TEST_F(SharingTest, DiamondWithinOneComplexObject) {
  // One complex object referencing the same shared leaf through two paths:
  // both pointers must alias and the object must still complete.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* left = tmpl.AddNode("left");
  TemplateNode* right = tmpl.AddNode("right");
  TemplateNode* shared = tmpl.AddNode("shared");
  root->expected_type = 1;
  left->expected_type = 2;
  right->expected_type = 2;
  shared->expected_type = 3;
  shared->shared = true;
  left->children.push_back({0, shared});
  right->children.push_back({0, shared});
  root->children.push_back({0, left});
  root->children.push_back({1, right});
  tmpl.SetRoot(root);

  Oid leaf = Put(3, {42}, {}, 9);
  Oid l = Put(2, {1}, {leaf}, 1);
  Oid r = Put(2, {2}, {leaf}, 2);
  Oid rt = Put(1, {0}, {l, r}, 0);
  AssemblyStats stats;
  auto rows = Run(&tmpl, {rt}, AssemblyOptions{}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const AssembledObject* obj = (*rows)[0][0].AsObject();
  EXPECT_EQ(obj->children[0]->children[0], obj->children[1]->children[0]);
  EXPECT_EQ(stats.objects_fetched, 4u);
  EXPECT_EQ(stats.shared_hits, 1u);
  EXPECT_EQ(CountAssembled(obj), 4u);
}

// ------------------------------------------------------- stacked assembly

TEST_F(SharingTest, StackedAssemblyLinksPrebuiltComponents) {
  // Fig. 17: Assembly1 builds the B/D sub-objects bottom-up; Assembly2
  // fetches A and C and links the prebuilt components without re-fetching.
  //
  // Complex object: A -> {B -> D, C}.
  AssemblyTemplate full;
  TemplateNode* a = full.AddNode("A");
  TemplateNode* b = full.AddNode("B");
  TemplateNode* c = full.AddNode("C");
  TemplateNode* d = full.AddNode("D");
  a->expected_type = 1;
  b->expected_type = 2;
  c->expected_type = 3;
  d->expected_type = 4;
  a->children.push_back({0, b});
  a->children.push_back({1, c});
  b->children.push_back({0, d});
  full.SetRoot(a);

  // Sub-template for Assembly1: B -> D.
  AssemblyTemplate sub;
  TemplateNode* sb = sub.AddNode("B");
  TemplateNode* sd = sub.AddNode("D");
  sb->expected_type = 2;
  sd->expected_type = 4;
  sb->children.push_back({0, sd});
  sub.SetRoot(sb);

  std::vector<Oid> a_oids;
  std::vector<Oid> b_oids;
  for (size_t i = 0; i < 4; ++i) {
    Oid d_oid = Put(4, {static_cast<int32_t>(i)}, {}, 30 + i);
    Oid b_oid = Put(2, {static_cast<int32_t>(i)}, {d_oid}, 20 + i);
    Oid c_oid = Put(3, {static_cast<int32_t>(i)}, {}, 10 + i);
    a_oids.push_back(Put(1, {static_cast<int32_t>(i)}, {b_oid, c_oid}, i));
    b_oids.push_back(b_oid);
  }

  // --- Assembly1: assemble all B sub-objects (input carries the A oid). ---
  std::vector<Row> sub_inputs;
  for (size_t i = 0; i < 4; ++i) {
    sub_inputs.push_back(Row{Value::Ref(b_oids[i]), Value::Ref(a_oids[i])});
  }
  auto assembly1 = std::make_unique<AssemblyOperator>(
      std::make_unique<VectorScan>(sub_inputs), &sub, &store_,
      AssemblyOptions{.window_size = 4}, /*root_column=*/0);
  ASSERT_TRUE(assembly1->Open().ok());
  auto prebuilt = std::make_shared<PrebuiltComponents>();
  prebuilt->arena = assembly1->arena();
  std::vector<Row> stage2_inputs;
  exec::RowBatch batch;
  for (;;) {
    auto n = assembly1->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      AssembledObject* b_obj = batch[i][0].AsObject();
      prebuilt->by_oid[b_obj->oid] = b_obj;
      stage2_inputs.push_back(Row{batch[i][1], Value::Prebuilt(prebuilt)});
    }
  }
  ASSERT_TRUE(assembly1->Close().ok());
  ASSERT_EQ(stage2_inputs.size(), 4u);

  // --- Assembly2: complete top-down, reusing the prebuilt components. ---
  auto assembly2 = std::make_unique<AssemblyOperator>(
      std::make_unique<VectorScan>(stage2_inputs), &full, &store_,
      AssemblyOptions{.window_size = 4}, /*root_column=*/0,
      /*prebuilt_column=*/1);
  ASSERT_TRUE(assembly2->Open().ok());
  size_t emitted = 0;
  AssemblyStats stats2;
  for (;;) {
    auto n = assembly2->NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      const AssembledObject* a_obj = batch[i][0].AsObject();
      EXPECT_EQ(a_obj->type_id, 1u);
      ASSERT_NE(a_obj->children[0], nullptr);  // prebuilt B
      EXPECT_EQ(a_obj->children[0]->type_id, 2u);
      ASSERT_NE(a_obj->children[0]->children[0], nullptr);  // prebuilt D
      ASSERT_NE(a_obj->children[1], nullptr);  // freshly fetched C
      ++emitted;
    }
  }
  stats2 = assembly2->stats();
  ASSERT_TRUE(assembly2->Close().ok());
  EXPECT_EQ(emitted, 4u);
  // Assembly2 fetched only A and C objects: 8 fetches, 4 prebuilt links.
  EXPECT_EQ(stats2.objects_fetched, 8u);
  EXPECT_EQ(stats2.prebuilt_hits, 4u);
  keep_alive_.push_back(std::move(assembly1));
  keep_alive_.push_back(std::move(assembly2));
}

// ------------------------------------------------- genealogy integration

TEST(GenealogySharingTest, AssembledQueryMatchesNaive) {
  GenealogyOptions options;
  options.num_people = 400;
  options.seed = 21;
  auto db = BuildGenealogyDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto naive = LivesCloseToFatherNaive(db->get());
  ASSERT_TRUE(naive.ok());

  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kElevator}) {
    for (size_t window : {size_t{1}, size_t{25}}) {
      ASSERT_TRUE((*db)->ColdRestart().ok());
      AssemblyOptions aopts;
      aopts.scheduler = kind;
      aopts.window_size = window;
      AssemblyOperator* assembly = nullptr;
      auto plan = MakeLivesCloseToFatherPlan(db->get(), aopts, &assembly);
      ASSERT_TRUE(plan->Open().ok());
      std::vector<Oid> matches;
      exec::RowBatch batch;
      for (;;) {
        auto n = plan->NextBatch(&batch);
        ASSERT_TRUE(n.ok()) << n.status().ToString();
        if (*n == 0) break;
        for (size_t i = 0; i < *n; ++i) {
          matches.push_back(batch[i][0].AsObject()->oid);
        }
      }
      ASSERT_TRUE(plan->Close().ok());
      std::sort(matches.begin(), matches.end());
      std::vector<Oid> expected = *naive;
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(matches, expected)
          << "scheduler=" << SchedulerKindName(kind) << " window=" << window;
    }
  }
}

TEST(GenealogySharingTest, SharedResidencesDedupedInWindow) {
  GenealogyOptions options;
  options.num_people = 300;
  options.people_per_residence = 5;  // strong sharing
  options.seed = 3;
  auto db = BuildGenealogyDatabase(options);
  ASSERT_TRUE(db.ok());

  AssemblyOptions aopts;
  aopts.window_size = 300;  // whole set in one window
  AssemblyOperator* assembly = nullptr;
  auto plan = MakeLivesCloseToFatherPlan(db->get(), aopts, &assembly);
  ASSERT_TRUE(plan->Open().ok());
  exec::RowBatch batch;
  for (;;) {
    auto n = plan->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }
  EXPECT_GT(assembly->stats().shared_hits, 0u);
  ASSERT_TRUE(plan->Close().ok());
}

}  // namespace
}  // namespace cobra
