#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using exec::Row;
using exec::RowBatch;
using exec::Value;
using exec::ValueKind;
using exec::VectorScan;

// Hand-built micro-databases with explicit physical placement.
class AssemblyTest : public ::testing::Test {
 protected:
  AssemblyTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 512}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 256) {}

  // Stores an object on an explicit page.
  Oid Put(TypeId type, std::vector<int32_t> fields, std::vector<Oid> refs,
          size_t page) {
    ObjectData obj;
    obj.oid = store_.AllocateOid();
    obj.type_id = type;
    obj.fields = std::move(fields);
    obj.refs = std::move(refs);
    obj.refs.resize(8, kInvalidOid);
    auto stored = store_.InsertAtPage(obj, &file_, page);
    EXPECT_TRUE(stored.ok()) << stored.status().ToString();
    return obj.oid;
  }

  std::unique_ptr<VectorScan> RootScan(const std::vector<Oid>& roots) {
    std::vector<Row> rows;
    for (Oid oid : roots) {
      rows.push_back(Row{Value::Ref(oid)});
    }
    return std::make_unique<VectorScan>(std::move(rows));
  }

  // Runs assembly over `roots` and returns the emitted rows.  The operator
  // is kept alive in keep_alive_ so emitted objects stay valid.
  Result<std::vector<Row>> Run(const AssemblyTemplate* tmpl,
                               const std::vector<Oid>& roots,
                               AssemblyOptions options,
                               AssemblyStats* stats_out = nullptr) {
    auto op = std::make_unique<AssemblyOperator>(RootScan(roots), tmpl,
                                                 &store_, options);
    COBRA_ASSIGN_OR_RETURN(std::vector<Row> rows, exec::DrainAll(op.get()));
    if (stats_out != nullptr) {
      *stats_out = op->stats();
    }
    keep_alive_.push_back(std::move(op));
    return rows;
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
  std::vector<std::unique_ptr<AssemblyOperator>> keep_alive_;
};

// A 3-node chain: root(type 1) -> mid(type 2) -> leaf(type 3).
struct ChainTemplate {
  AssemblyTemplate tmpl;
  TemplateNode* root;
  TemplateNode* mid;
  TemplateNode* leaf;

  ChainTemplate() {
    root = tmpl.AddNode("root");
    mid = tmpl.AddNode("mid");
    leaf = tmpl.AddNode("leaf");
    root->expected_type = 1;
    mid->expected_type = 2;
    leaf->expected_type = 3;
    root->children.push_back({0, mid});
    mid->children.push_back({0, leaf});
    tmpl.SetRoot(root);
  }
};

TEST_F(AssemblyTest, AssemblesSingleChain) {
  ChainTemplate ct;
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  AssemblyStats stats;
  auto rows = Run(&ct.tmpl, {root}, AssemblyOptions{}, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  const Row& row = (*rows)[0];
  ASSERT_EQ(row.size(), 1u);
  ASSERT_EQ(row[0].kind(), ValueKind::kObject);
  const AssembledObject* obj = row[0].AsObject();
  EXPECT_EQ(obj->oid, root);
  EXPECT_EQ(obj->fields[0], 10);
  ASSERT_EQ(obj->children.size(), 1u);
  ASSERT_NE(obj->children[0], nullptr);
  EXPECT_EQ(obj->children[0]->oid, mid);
  ASSERT_NE(obj->children[0]->children[0], nullptr);
  EXPECT_EQ(obj->children[0]->children[0]->fields[0], 30);
  EXPECT_EQ(stats.objects_fetched, 3u);
  EXPECT_EQ(stats.complex_emitted, 1u);
  EXPECT_EQ(stats.complex_aborted, 0u);
}

TEST_F(AssemblyTest, PassthroughColumnsPreserved) {
  ChainTemplate ct;
  Oid leaf = Put(3, {1}, {}, 0);
  Oid mid = Put(2, {2}, {leaf}, 0);
  Oid root = Put(1, {3}, {mid}, 0);
  std::vector<Row> inputs = {{Value::Int(42), Value::Ref(root),
                              Value::Str("tag")}};
  auto op = std::make_unique<AssemblyOperator>(
      std::make_unique<VectorScan>(inputs), &ct.tmpl, &store_,
      AssemblyOptions{}, /*root_column=*/1);
  ASSERT_TRUE(op->Open().ok());
  RowBatch batch;
  auto n = op->NextBatch(&batch);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  Row row = batch.MoveRow(0);
  EXPECT_EQ(row[0].AsInt(), 42);
  EXPECT_EQ(row[1].kind(), ValueKind::kObject);
  EXPECT_EQ(row[2].AsStr(), "tag");
  keep_alive_.push_back(std::move(op));
}

TEST_F(AssemblyTest, MissingReferenceLeavesNullChild) {
  ChainTemplate ct;
  Oid mid = Put(2, {20}, {/*no leaf*/}, 0);
  Oid root = Put(1, {10}, {mid}, 0);
  auto rows = Run(&ct.tmpl, {root}, AssemblyOptions{});
  ASSERT_TRUE(rows.ok());
  const AssembledObject* obj = (*rows)[0][0].AsObject();
  ASSERT_NE(obj->children[0], nullptr);
  EXPECT_EQ(obj->children[0]->children[0], nullptr);
}

TEST_F(AssemblyTest, EmptyInputYieldsNoRows) {
  ChainTemplate ct;
  auto rows = Run(&ct.tmpl, {}, AssemblyOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(AssemblyTest, DanglingRootIsNotFound) {
  ChainTemplate ct;
  auto rows = Run(&ct.tmpl, {9999}, AssemblyOptions{});
  EXPECT_TRUE(rows.status().IsNotFound());
}

TEST_F(AssemblyTest, DanglingChildIsNotFound) {
  ChainTemplate ct;
  Oid root = Put(1, {1}, {12345}, 0);  // reference to nowhere
  auto rows = Run(&ct.tmpl, {root}, AssemblyOptions{});
  EXPECT_TRUE(rows.status().IsNotFound());
}

TEST_F(AssemblyTest, TypeMismatchIsCorruption) {
  ChainTemplate ct;
  Oid wrong = Put(7, {1}, {}, 0);  // type 7 where template wants 2
  Oid root = Put(1, {1}, {wrong}, 0);
  auto rows = Run(&ct.tmpl, {root}, AssemblyOptions{});
  EXPECT_TRUE(rows.status().IsCorruption());
}

TEST_F(AssemblyTest, NonOidRootColumnRejected) {
  ChainTemplate ct;
  std::vector<Row> inputs = {{Value::Int(5)}};
  AssemblyOperator op(std::make_unique<VectorScan>(inputs), &ct.tmpl, &store_,
                      AssemblyOptions{});
  ASSERT_TRUE(op.Open().ok());
  RowBatch batch;
  EXPECT_TRUE(op.NextBatch(&batch).status().IsInvalidArgument());
}

TEST_F(AssemblyTest, ZeroWindowRejected) {
  ChainTemplate ct;
  AssemblyOperator op(RootScan({}), &ct.tmpl, &store_,
                      AssemblyOptions{.window_size = 0});
  EXPECT_TRUE(op.Open().IsInvalidArgument());
}

TEST_F(AssemblyTest, InvalidTemplateRejectedAtOpen) {
  AssemblyTemplate bad;  // no root
  AssemblyOperator op(RootScan({}), &bad, &store_, AssemblyOptions{});
  EXPECT_TRUE(op.Open().IsInvalidArgument());
}

TEST_F(AssemblyTest, DepthFirstFetchesOneComplexObjectAtATime) {
  // §6.2: "depth-first scheduling is equivalent to object-at-a-time
  // assembly, regardless of window size."  Each complex object sits on its
  // own page, so the read trace shows which complex is being fetched.
  ChainTemplate ct;
  std::vector<Oid> roots;
  for (int i = 0; i < 4; ++i) {
    size_t base = static_cast<size_t>(i) * 3;
    Oid leaf = Put(3, {i}, {}, base + 2);
    Oid mid = Put(2, {i}, {leaf}, base + 1);
    roots.push_back(Put(1, {i}, {mid}, base));
  }
  ASSERT_TRUE(buffer_.DropAll().ok());
  disk_.EnableReadTrace(true);
  AssemblyOptions options;
  options.window_size = 4;
  options.scheduler = SchedulerKind::kDepthFirst;
  auto rows = Run(&ct.tmpl, roots, options);
  ASSERT_TRUE(rows.ok());
  const auto& trace = disk_.read_trace();
  ASSERT_EQ(trace.size(), 12u);
  for (size_t i = 0; i < trace.size(); ++i) {
    // Complex i occupies pages 3i..3i+2 and is read contiguously.
    EXPECT_EQ(trace[i] / 3, i / 3) << "read " << i << " hit page " << trace[i];
  }
}

TEST_F(AssemblyTest, ElevatorFetchesInPageOrderWithinWindow) {
  // Three chains placed so that an ascending page sweep interleaves them.
  ChainTemplate ct;
  // complex 0: pages 0, 10, 20; complex 1: 1, 11, 21; complex 2: 2, 12, 22.
  std::vector<Oid> roots;
  for (int i = 0; i < 3; ++i) {
    Oid leaf = Put(3, {i}, {}, 20 + static_cast<size_t>(i));
    Oid mid = Put(2, {i}, {leaf}, 10 + static_cast<size_t>(i));
    roots.push_back(Put(1, {i}, {mid}, static_cast<size_t>(i)));
  }
  ASSERT_TRUE(buffer_.DropAll().ok());
  disk_.EnableReadTrace(true);
  disk_.ParkHead(0);
  AssemblyOptions options;
  options.window_size = 3;
  options.scheduler = SchedulerKind::kElevator;
  auto rows = Run(&ct.tmpl, roots, options);
  ASSERT_TRUE(rows.ok());
  // The sweep reads pages in ascending order: 0,1,2,10,11,12,20,21,22.
  std::vector<PageId> expected = {0, 1, 2, 10, 11, 12, 20, 21, 22};
  EXPECT_EQ(disk_.read_trace(), expected);
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(AssemblyTest, ElevatorBeatsDepthFirstOnScatteredLayout) {
  ChainTemplate ct;
  // Scatter: roots low, mids high, leaves low again — DF ping-pongs,
  // elevator sweeps.
  std::vector<Oid> roots;
  for (size_t i = 0; i < 8; ++i) {
    Oid leaf = Put(3, {static_cast<int32_t>(i)}, {}, 40 + i);
    Oid mid = Put(2, {static_cast<int32_t>(i)}, {leaf}, 120 + i);
    roots.push_back(Put(1, {static_cast<int32_t>(i)}, {mid}, i));
  }
  ASSERT_TRUE(buffer_.FlushAll().ok());

  // Each run uses a fresh cold buffer so the comparison is fair.
  auto run_with = [&](SchedulerKind kind) -> double {
    BufferManager cold(&disk_, BufferOptions{.num_frames = 512});
    ObjectStore cold_store(&cold, &directory_);
    disk_.ResetStats();
    disk_.ParkHead(0);
    AssemblyOptions options;
    options.window_size = 8;
    options.scheduler = kind;
    auto op = std::make_unique<AssemblyOperator>(RootScan(roots), &ct.tmpl,
                                                 &cold_store, options);
    EXPECT_TRUE(op->Open().ok());
    RowBatch batch;
    for (;;) {
      auto n = op->NextBatch(&batch);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) break;
    }
    EXPECT_TRUE(op->Close().ok());
    return disk_.stats().AvgSeekPerRead();
  };
  ASSERT_TRUE(buffer_.FlushAll().ok());
  double df = run_with(SchedulerKind::kDepthFirst);
  double elevator = run_with(SchedulerKind::kElevator);
  EXPECT_LT(elevator, df);
}

TEST_F(AssemblyTest, PredicateAbortsFailingComplexObjects) {
  ChainTemplate ct;
  ct.mid->predicate = [](const ObjectData& obj) {
    return obj.fields[0] % 2 == 0;  // keep even mids
  };
  ct.mid->selectivity = 0.5;
  std::vector<Oid> roots;
  for (int i = 0; i < 6; ++i) {
    Oid leaf = Put(3, {100 + i}, {}, 2);
    Oid mid = Put(2, {i}, {leaf}, 1);
    roots.push_back(Put(1, {i}, {mid}, 0));
  }
  AssemblyStats stats;
  auto rows = Run(&ct.tmpl, roots, AssemblyOptions{.window_size = 3}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(stats.complex_aborted, 3u);
  for (const Row& row : *rows) {
    const AssembledObject* obj = row[0].AsObject();
    EXPECT_EQ(obj->children[0]->fields[0] % 2, 0);
  }
}

TEST_F(AssemblyTest, PredicateAbortSkipsRemainingFetches) {
  // Root predicate false: only the root object is ever fetched.
  ChainTemplate ct;
  ct.root->predicate = [](const ObjectData&) { return false; };
  Oid leaf = Put(3, {1}, {}, 2);
  Oid mid = Put(2, {1}, {leaf}, 1);
  Oid root = Put(1, {1}, {mid}, 0);
  AssemblyStats stats;
  auto rows = Run(&ct.tmpl, {root}, AssemblyOptions{}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(stats.objects_fetched, 1u);
  EXPECT_EQ(stats.complex_aborted, 1u);
}

TEST_F(AssemblyTest, PredicatePrioritizationFetchesRejectorFirst) {
  // Root has two children: an expensive subtree (no predicate) and a cheap
  // leaf with a highly rejecting predicate.  With prioritization the leaf
  // is fetched first and the subtree is never touched on failing objects.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* expensive = tmpl.AddNode("expensive");
  TemplateNode* expensive_leaf = tmpl.AddNode("expensive_leaf");
  TemplateNode* checked = tmpl.AddNode("checked");
  root->expected_type = 1;
  expensive->expected_type = 2;
  expensive_leaf->expected_type = 3;
  checked->expected_type = 4;
  expensive->children.push_back({0, expensive_leaf});
  root->children.push_back({0, expensive});
  root->children.push_back({1, checked});
  checked->predicate = [](const ObjectData&) { return false; };  // rejects all
  checked->selectivity = 0.0;
  tmpl.SetRoot(root);

  Oid el = Put(3, {1}, {}, 3);
  Oid ex = Put(2, {1}, {el}, 2);
  Oid ch = Put(4, {1}, {}, 1);
  Oid rt = Put(1, {1}, {ex, ch}, 0);

  AssemblyStats with_priority;
  AssemblyOptions options;
  options.prioritize_predicates = true;
  auto rows = Run(&tmpl, {rt}, options, &with_priority);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  // Only root + checked fetched; the expensive subtree skipped entirely.
  EXPECT_EQ(with_priority.objects_fetched, 2u);

  AssemblyStats without_priority;
  options.prioritize_predicates = false;
  options.scheduler = SchedulerKind::kDepthFirst;
  rows = Run(&tmpl, {rt}, options, &without_priority);
  ASSERT_TRUE(rows.ok());
  // Template order fetches the expensive subtree before the rejecting leaf.
  EXPECT_GT(without_priority.objects_fetched, 2u);
}

TEST_F(AssemblyTest, RecursiveTemplateTruncatesAtMaxDepth) {
  AssemblyTemplate tmpl;
  TemplateNode* node = tmpl.AddNode("linked");
  node->expected_type = 5;
  node->children.push_back({0, node});
  tmpl.SetRoot(node);
  tmpl.set_max_depth(3);

  // A linked list of 6 objects.
  std::vector<Oid> chain(6);
  Oid next = kInvalidOid;
  for (int i = 5; i >= 0; --i) {
    chain[i] = Put(5, {i}, {next}, static_cast<size_t>(i));
    next = chain[i];
  }
  AssemblyStats stats;
  auto rows = Run(&tmpl, {chain[0]}, AssemblyOptions{}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  // Depth 0,1,2 assembled; expansion stops below max_depth = 3.
  EXPECT_EQ(CountAssembled((*rows)[0][0].AsObject()), 3u);
  EXPECT_EQ(stats.objects_fetched, 3u);
}

TEST_F(AssemblyTest, WindowPagesHighWaterTracked) {
  ChainTemplate ct;
  std::vector<Oid> roots;
  for (size_t i = 0; i < 4; ++i) {
    Oid leaf = Put(3, {1}, {}, i * 3 + 2);
    Oid mid = Put(2, {1}, {leaf}, i * 3 + 1);
    roots.push_back(Put(1, {1}, {mid}, i * 3));
  }
  AssemblyStats stats;
  auto rows =
      Run(&ct.tmpl, roots, AssemblyOptions{.window_size = 4}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(stats.max_window_pages, 3u);
  EXPECT_LE(stats.max_window_pages, 12u);
  EXPECT_GE(stats.max_pool_size, 1u);
}

TEST_F(AssemblyTest, EmissionInCompletionOrderNotInputOrder) {
  // With breadth-first and asymmetric objects (one chain deep, one
  // shallow), the shallow complex admitted second completes first.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* mid = tmpl.AddNode("mid");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->children.push_back({0, mid});
  mid->children.push_back({0, leaf});
  tmpl.SetRoot(root);

  Oid deep_leaf = Put(0, {1}, {}, 4);
  Oid deep_mid = Put(0, {1}, {deep_leaf}, 3);
  Oid deep_root = Put(0, {1}, {deep_mid}, 2);
  Oid shallow_root = Put(0, {2}, {}, 1);  // no children at all

  AssemblyOptions options;
  options.window_size = 2;
  options.scheduler = SchedulerKind::kBreadthFirst;
  auto rows = Run(&tmpl, {deep_root, shallow_root}, options);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsObject()->oid, shallow_root);
  EXPECT_EQ((*rows)[1][0].AsObject()->oid, deep_root);
}

TEST_F(AssemblyTest, MatchesNaiveAssemblerOnRandomDag) {
  // Random DAG-ish database: each object references earlier objects.
  std::vector<TemplateNode*> nodes;
  AssemblyTemplate tmpl = MakeBinaryTreeTemplate(3, &nodes);
  // Build 20 proper binary-tree complex objects.
  std::vector<Oid> roots;
  size_t page = 0;
  for (int c = 0; c < 20; ++c) {
    std::vector<Oid> level3;
    for (int i = 0; i < 4; ++i) {
      level3.push_back(Put(4 + static_cast<TypeId>(i), {c, i}, {}, page++ % 200));
    }
    Oid b = Put(2, {c}, {level3[0], level3[1]}, page++ % 200);
    Oid cc = Put(3, {c}, {level3[2], level3[3]}, page++ % 200);
    roots.push_back(Put(1, {c}, {b, cc}, page++ % 200));
  }
  NaiveAssembler naive(&store_, &tmpl);
  ObjectArena naive_arena;
  auto expected = naive.AssembleAll(roots, &naive_arena);
  ASSERT_TRUE(expected.ok());

  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kBreadthFirst,
                    SchedulerKind::kElevator}) {
    for (size_t window : {size_t{1}, size_t{5}, size_t{50}}) {
      AssemblyOptions options;
      options.scheduler = kind;
      options.window_size = window;
      auto rows = Run(&tmpl, roots, options);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      ASSERT_EQ(rows->size(), expected->size());
      // Compare per-root OID sets (emission order may differ).
      std::map<Oid, std::set<Oid>> got;
      for (const Row& row : *rows) {
        const AssembledObject* obj = row[0].AsObject();
        auto oids = CollectOids(obj);
        got[obj->oid] = std::set<Oid>(oids.begin(), oids.end());
      }
      for (AssembledObject* exp : *expected) {
        auto oids = CollectOids(exp);
        ASSERT_TRUE(got.contains(exp->oid));
        EXPECT_EQ(got[exp->oid],
                  (std::set<Oid>(oids.begin(), oids.end())))
            << "scheduler=" << SchedulerKindName(kind) << " window=" << window;
      }
    }
  }
}

TEST_F(AssemblyTest, NaiveAssemblerRespectsPredicates) {
  ChainTemplate ct;
  ct.leaf->predicate = [](const ObjectData& obj) {
    return obj.fields[0] > 0;
  };
  Oid good_leaf = Put(3, {5}, {}, 0);
  Oid bad_leaf = Put(3, {-5}, {}, 0);
  Oid good_mid = Put(2, {1}, {good_leaf}, 0);
  Oid bad_mid = Put(2, {1}, {bad_leaf}, 0);
  Oid good_root = Put(1, {1}, {good_mid}, 0);
  Oid bad_root = Put(1, {1}, {bad_mid}, 0);

  NaiveAssembler naive(&store_, &ct.tmpl);
  ObjectArena arena;
  auto good = naive.AssembleOne(good_root, &arena);
  ASSERT_TRUE(good.ok());
  EXPECT_NE(*good, nullptr);
  auto bad = naive.AssembleOne(bad_root, &arena);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(*bad, nullptr);
  auto all = naive.AssembleAll({good_root, bad_root}, &arena);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
}

TEST_F(AssemblyTest, OperatorReusableAfterClose) {
  ChainTemplate ct;
  Oid leaf = Put(3, {1}, {}, 2);
  Oid mid = Put(2, {1}, {leaf}, 1);
  Oid root = Put(1, {1}, {mid}, 0);
  AssemblyOperator op(RootScan({root}), &ct.tmpl, &store_, AssemblyOptions{});
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(op.Open().ok());
    RowBatch batch;
    auto n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 1u);
    EXPECT_EQ(batch[0][0].AsObject()->oid, root);
    n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    ASSERT_TRUE(op.Close().ok());
  }
}

}  // namespace
}  // namespace cobra
