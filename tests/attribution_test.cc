// Per-query causal attribution: the conservation invariant, latency
// decomposition, slow-query reports, live snapshots and the flight
// recorder (ctest label `concurrency`; CI also runs this binary under
// -fsanitize=thread).
//
// The invariant under test (obs/query_context.h): every global disk/buffer
// counter increment is charged to exactly one query, so per-query sums
// equal the global stats *exactly* — single client, eight concurrent
// clients, vectored I/O and fault injection alike.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "obs/flight_recorder.h"
#include "obs/query_context.h"
#include "service/query_service.h"
#include "storage/async_disk.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "workload/acob.h"

namespace cobra {
namespace {

struct ServiceRun {
  std::vector<service::QueryResult> results;
  obs::QueryIoSnapshot attributed;  // summed over results
  DiskStats disk;
  BufferStats buffer;
};

void SumInto(obs::QueryIoSnapshot* total, const obs::QueryIoSnapshot& io) {
  total->disk_reads += io.disk_reads;
  total->disk_writes += io.disk_writes;
  total->read_seek_pages += io.read_seek_pages;
  total->write_seek_pages += io.write_seek_pages;
  total->pages_read += io.pages_read;
  total->coalesced_runs += io.coalesced_runs;
  total->piggyback_pages += io.piggyback_pages;
  total->buffer_hits += io.buffer_hits;
  total->buffer_faults += io.buffer_faults;
  total->retries += io.retries;
  total->checksum_failures += io.checksum_failures;
  total->faults_injected += io.faults_injected;
  total->io_wait_ns += io.io_wait_ns;
}

struct RunConfig {
  size_t clients = 1;
  size_t workers = 2;
  size_t shards = 4;
  size_t io_batch = 1;
  uint64_t slow_query_ns = 0;
  size_t flight_capacity = 4096;
  ErrorPolicy error_policy = ErrorPolicy::kFailQuery;
  // Callback run while the service is alive and quiesced.
  std::function<void(service::QueryService*)> inspect;
};

// Runs `clients` slices of the database's roots concurrently through a
// QueryService over AsyncDisk + sharded pool, and captures both sides of
// the conservation equation.
ServiceRun RunService(AcobDatabase* db, const RunConfig& config) {
  EXPECT_TRUE(db->ColdRestart().ok());
  ServiceRun run;
  {
    AsyncDisk async(db->disk.get());
    async.set_max_run_pages(config.io_batch);
    BufferManager pool(&async, BufferOptions{.num_frames = 4096,
                                             .retry = db->options.retry,
                                             .num_shards = config.shards});
    service::ServiceOptions sopts;
    sopts.num_workers = config.workers;
    sopts.async_disk = &async;
    sopts.slow_query_ns = config.slow_query_ns;
    sopts.flight_capacity = config.flight_capacity;
    service::QueryService service(&pool, db->directory.get(), sopts);

    std::vector<std::future<service::QueryResult>> futures;
    const size_t n = db->roots.size();
    for (size_t c = 0; c < config.clients; ++c) {
      service::QueryJob job;
      job.client = "c" + std::to_string(c);
      job.tmpl = &db->tmpl;
      job.roots.assign(db->roots.begin() + n * c / config.clients,
                       db->roots.begin() + n * (c + 1) / config.clients);
      job.assembly.window_size = 25;
      job.assembly.scheduler = SchedulerKind::kElevator;
      job.assembly.io_batch_pages = config.io_batch;
      job.assembly.error_policy = config.error_policy;
      futures.push_back(service.Submit(std::move(job)));
    }
    for (auto& future : futures) {
      run.results.push_back(future.get());
      SumInto(&run.attributed, run.results.back().io);
    }
    service.Drain();
    async.Drain();
    // Both sides of the equation while the stack is quiescent and alive
    // (teardown write-backs happen later, outside the window).
    run.disk = db->disk->stats();
    run.buffer = pool.stats();
    if (config.inspect) config.inspect(&service);
  }
  return run;
}

void ExpectConservation(const ServiceRun& run) {
  EXPECT_EQ(run.attributed.disk_reads, run.disk.reads);
  EXPECT_EQ(run.attributed.disk_writes, run.disk.writes);
  EXPECT_EQ(run.attributed.read_seek_pages, run.disk.read_seek_pages);
  EXPECT_EQ(run.attributed.write_seek_pages, run.disk.write_seek_pages);
  EXPECT_EQ(run.attributed.pages_read, run.disk.pages_read);
  EXPECT_EQ(run.attributed.coalesced_runs, run.disk.coalesced_runs);
  EXPECT_EQ(run.attributed.buffer_hits, run.buffer.hits);
  EXPECT_EQ(run.attributed.buffer_faults, run.buffer.faults);
  EXPECT_EQ(run.attributed.retries, run.buffer.retries);
  EXPECT_EQ(run.attributed.checksum_failures, run.buffer.checksum_failures);
}

std::unique_ptr<AcobDatabase> BuildDb(size_t objects, uint64_t seed = 42,
                                      bool faults = false) {
  AcobOptions options;
  options.num_complex_objects = objects;
  options.clustering = Clustering::kUnclustered;
  options.seed = seed;
  if (faults) options.faults = FaultProfile::Mixed(/*seed=*/7);
  auto built = BuildAcobDatabase(options);
  EXPECT_TRUE(built.ok());
  return std::move(*built);
}

RunConfig Config(size_t clients, size_t workers, size_t shards) {
  RunConfig config;
  config.clients = clients;
  config.workers = workers;
  config.shards = shards;
  return config;
}

TEST(Attribution, ConservationSingleQuery) {
  auto db = BuildDb(100);
  ServiceRun run = RunService(db.get(), Config(1, 2, 4));
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_TRUE(run.results[0].status.ok());
  EXPECT_GT(run.attributed.disk_reads, 0u);
  EXPECT_GT(run.attributed.buffer_faults, 0u);
  ExpectConservation(run);
}

TEST(Attribution, ConservationEightConcurrentClients) {
  auto db = BuildDb(200);
  ServiceRun run = RunService(db.get(), Config(8, 8, 8));
  ASSERT_EQ(run.results.size(), 8u);
  for (const auto& result : run.results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_GT(result.io.disk_reads + result.io.buffer_hits, 0u)
        << "client " << result.client << " was charged nothing";
  }
  ExpectConservation(run);
}

TEST(Attribution, ConservationWithVectoredIo) {
  auto db = BuildDb(200);
  RunConfig config = Config(8, 8, 8);
  config.io_batch = 8;
  ServiceRun run = RunService(db.get(), config);
  for (const auto& result : run.results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  ExpectConservation(run);
}

TEST(Attribution, ConservationUnderInjectedFaults) {
  auto db = BuildDb(150, /*seed=*/42, /*faults=*/true);
  RunConfig config = Config(8, 4, 8);
  config.error_policy = ErrorPolicy::kSkipObject;
  ServiceRun run = RunService(db.get(), config);
  // The mixed profile injects retries and checksum failures; the invariant
  // must hold for the failure counters too — whether or not a job degraded
  // all the way to an error.
  EXPECT_GT(run.attributed.faults_injected, 0u);
  ExpectConservation(run);
}

TEST(Attribution, LatencyDecompositionIsExact) {
  auto db = BuildDb(150);
  ServiceRun run = RunService(db.get(), Config(4, 2, 4));
  for (const auto& result : run.results) {
    EXPECT_EQ(result.total_ns,
              result.queue_ns + result.io_ns + result.cpu_ns)
        << "client " << result.client;
    EXPECT_GT(result.total_ns, 0u);
    // A query that actually hit the disk must have attributed I/O wait; a
    // fully cache-served one legitimately has none.
    if (result.io.disk_reads > 0) {
      EXPECT_GT(result.io.io_wait_ns, 0u) << "client " << result.client;
    }
  }
  // 4 jobs on 2 workers: at least two queries waited in the queue.
  uint64_t queued = 0;
  for (const auto& result : run.results) {
    if (result.queue_ns > 0) queued++;
  }
  EXPECT_GE(queued, 2u);
}

TEST(Attribution, QueryIdsAreUniqueAndStable) {
  auto db = BuildDb(100);
  ServiceRun run = RunService(db.get(), Config(6, 3, 4));
  std::vector<uint64_t> ids;
  for (const auto& result : run.results) {
    ids.push_back(result.query_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_GE(ids.front(), 1u);
}

TEST(Attribution, SlowQueryReportCarriesExplainAndTimeline) {
  auto db = BuildDb(100);
  std::vector<obs::SlowQueryReport> reports;
  RunConfig config = Config(2, 2, 4);
  config.slow_query_ns = 1;  // every query trips the threshold
  config.inspect = [&](service::QueryService* service) {
    reports = service->slow_reports();
  };
  ServiceRun run = RunService(db.get(), config);
  (void)run;
  ASSERT_EQ(reports.size(), 2u);
  for (const obs::SlowQueryReport& report : reports) {
    EXPECT_EQ(report.reason, "latency-threshold");
    EXPECT_EQ(report.status, "OK");
    EXPECT_NE(report.explain.find("Assembly(window=25"), std::string::npos)
        << report.explain;
    EXPECT_NE(report.explain.find("VectorScan"), std::string::npos);
    EXPECT_EQ(report.total_ns,
              report.queue_ns + report.io_ns + report.cpu_ns);
    // The timeline ends with the query's end marker (the ring keeps the
    // tail; kQueryBegin survives only when nothing was dropped).
    ASSERT_GE(report.timeline.size(), 2u);
    EXPECT_EQ(report.timeline.back().kind, obs::SpanEventKind::kQueryEnd);
    if (report.timeline_dropped == 0) {
      EXPECT_EQ(report.timeline.front().kind,
                obs::SpanEventKind::kQueryBegin);
    }
    bool saw_io = false;
    for (const obs::SpanEvent& event : report.timeline) {
      EXPECT_EQ(event.query_id, report.query_id);
      if (event.kind == obs::SpanEventKind::kDiskRead ||
          event.kind == obs::SpanEventKind::kDiskReadRun) {
        saw_io = true;
      }
    }
    EXPECT_TRUE(saw_io);
    // The text rendering is the slow-query log entry.
    std::string text = report.ToText();
    EXPECT_NE(text.find("slow query"), std::string::npos);
    EXPECT_NE(text.find("latency-threshold"), std::string::npos);
    EXPECT_NE(text.find("Assembly("), std::string::npos);
  }
}

TEST(Attribution, FaultedQueryLeavesReportWithFaultReason) {
  auto db = BuildDb(150, /*seed=*/42, /*faults=*/true);
  std::vector<obs::SlowQueryReport> reports;
  RunConfig config = Config(4, 2, 4);
  config.error_policy = ErrorPolicy::kSkipObject;
  config.inspect = [&](service::QueryService* service) {
    reports = service->slow_reports();
  };
  ServiceRun run = RunService(db.get(), config);
  (void)run;
  // slow_query_ns is 0: only faulted (or errored) queries report.
  ASSERT_FALSE(reports.empty());
  for (const obs::SlowQueryReport& report : reports) {
    EXPECT_TRUE(report.reason == "fault" || report.reason == "error")
        << report.reason;
    if (report.reason == "fault") {
      EXPECT_GT(report.io.faults_injected, 0u);
    }
  }
}

TEST(Attribution, SnapshotAggregatesClientsAndPool) {
  auto db = BuildDb(100);
  obs::Snapshot snapshot;
  uint64_t expected_rows = 0;
  RunConfig config = Config(4, 2, 4);
  config.inspect = [&](service::QueryService* service) {
    snapshot = service->TakeSnapshot();
  };
  ServiceRun run = RunService(db.get(), config);
  for (const auto& result : run.results) expected_rows += result.rows;

  EXPECT_EQ(snapshot.completed, 4u);
  EXPECT_EQ(snapshot.failed, 0u);
  EXPECT_TRUE(snapshot.in_flight.empty());
  ASSERT_EQ(snapshot.clients.size(), 4u);
  uint64_t rows = 0;
  obs::QueryIoSnapshot totals;
  for (size_t i = 0; i < snapshot.clients.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(snapshot.clients[i - 1].first, snapshot.clients[i].first);
    }
    EXPECT_EQ(snapshot.clients[i].second.jobs, 1u);
    rows += snapshot.clients[i].second.rows;
    SumInto(&totals, snapshot.clients[i].second.io);
  }
  EXPECT_EQ(rows, expected_rows);
  EXPECT_EQ(totals.disk_reads, run.attributed.disk_reads);

  EXPECT_EQ(snapshot.pool.total_frames, 4096u);
  EXPECT_GT(snapshot.pool.resident, 0u);
  EXPECT_EQ(snapshot.pool.pinned, 0u);
  EXPECT_EQ(snapshot.pool.resident + snapshot.pool.free_frames,
            snapshot.pool.total_frames);
  EXPECT_EQ(snapshot.pool.per_shard_resident.size(), 4u);
  size_t per_shard_sum = 0;
  for (size_t r : snapshot.pool.per_shard_resident) per_shard_sum += r;
  EXPECT_EQ(per_shard_sum, snapshot.pool.resident);

  // Renderings exist and mention the clients.
  EXPECT_NE(snapshot.ToText().find("c0"), std::string::npos);
  obs::JsonValue json = snapshot.ToJson();
  EXPECT_NE(json.Find("clients"), nullptr);
  EXPECT_NE(json.Find("pool"), nullptr);
}

TEST(Attribution, FlightRecorderIsBoundedAndOrdered) {
  auto db = BuildDb(200);
  size_t events = 0;
  uint64_t dropped = 0;
  std::vector<obs::SpanEvent> retained;
  RunConfig config = Config(4, 4, 4);
  config.flight_capacity = 64;
  config.inspect = [&](service::QueryService* service) {
    retained = service->flight_recorder().Events();
    events = retained.size();
    dropped = service->flight_recorder().dropped();
  };
  ServiceRun run = RunService(db.get(), config);
  (void)run;
  EXPECT_LE(events, 64u);
  // The run charges far more than 64 events, so the ring must have wrapped.
  EXPECT_GT(dropped, 0u);
  for (size_t i = 1; i < retained.size(); ++i) {
    EXPECT_LE(retained[i - 1].ts_ns, retained[i].ts_ns);
  }
}

TEST(Attribution, RegistryRollupMatchesPerQuerySums) {
  auto db = BuildDb(100);
  uint64_t rollup_reads = 0;
  uint64_t rollup_faults = 0;
  RunConfig config = Config(4, 2, 4);
  config.inspect = [&](service::QueryService* service) {
    const obs::Counter* reads =
        service->registry().FindCounter("service.attributed.disk_reads");
    const obs::Counter* faults =
        service->registry().FindCounter("service.attributed.buffer_faults");
    ASSERT_NE(reads, nullptr);
    ASSERT_NE(faults, nullptr);
    rollup_reads = reads->value();
    rollup_faults = faults->value();
    // Latency histograms: one sample per query.
    const obs::Histogram* total =
        service->registry().FindHistogram("service.latency.total_ns");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->count(), 4u);
    EXPECT_LE(total->P50(), total->P99());
    EXPECT_LE(total->P99(), total->P999());
  };
  ServiceRun run = RunService(db.get(), config);
  EXPECT_EQ(rollup_reads, run.attributed.disk_reads);
  EXPECT_EQ(rollup_faults, run.attributed.buffer_faults);
}

// Substrate unit tests (no service): context ring, nesting, timer.

TEST(QueryContext, TimelineRingKeepsTailAndCountsDrops) {
  obs::QueryContext ctx(7, "t", /*timeline_capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    ctx.Record({obs::SpanEventKind::kDiskRead, /*ts_ns=*/i + 1, 0, i, 0, 0});
  }
  std::vector<obs::SpanEvent> timeline = ctx.Timeline();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(ctx.timeline_dropped(), 6u);
  // Oldest events dropped: pages 6..9 remain, stamped with the query id.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(timeline[i].page, 6 + i);
    EXPECT_EQ(timeline[i].query_id, 7u);
  }
}

TEST(QueryContext, ScopedContextNests) {
  EXPECT_EQ(obs::CurrentQuery(), nullptr);
  auto outer = std::make_shared<obs::QueryContext>(1, "outer");
  auto inner = std::make_shared<obs::QueryContext>(2, "inner");
  {
    obs::ScopedQueryContext outer_scope(outer);
    EXPECT_EQ(obs::CurrentQueryId(), 1u);
    {
      obs::ScopedQueryContext inner_scope(inner);
      EXPECT_EQ(obs::CurrentQueryId(), 2u);
      {
        // Null clears (the I/O thread's unattributed-service case).
        obs::ScopedQueryContext cleared(nullptr);
        EXPECT_EQ(obs::CurrentQuery(), nullptr);
        EXPECT_EQ(obs::CurrentQueryId(), 0u);
      }
      EXPECT_EQ(obs::CurrentQueryId(), 2u);
    }
    EXPECT_EQ(obs::CurrentQueryId(), 1u);
  }
  EXPECT_EQ(obs::CurrentQuery(), nullptr);
}

TEST(QueryContext, IoWaitTimerChargesCurrentQueryOnly) {
  {
    // No query: must be a no-op, not a crash.
    obs::IoWaitTimer idle;
  }
  auto ctx = std::make_shared<obs::QueryContext>(3, "t");
  {
    obs::ScopedQueryContext scope(ctx);
    obs::IoWaitTimer timer;
  }
  // Zero-length waits may round to 0; charge a measurable one.
  {
    obs::ScopedQueryContext scope(ctx);
    obs::IoWaitTimer timer;
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(ctx->io.io_wait_ns.load(), 0u);
}

}  // namespace
}  // namespace cobra
