// Conformance tests for the batched iterator protocol (exec/iterator.h).
//
// Every operator must honor the same lifecycle contract: Close() is
// idempotent, Close() is legal after a partial drain, and Open() after
// Close() restarts the stream from the beginning.  The RowBatch edge cases
// (zero-capacity rejection, final partial batch, empty-input global
// aggregate) and mid-stream error propagation through a deep plan are
// covered here too.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assembly/assembly_operator.h"
#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/expr.h"
#include "exec/filter_project.h"
#include "exec/iterator.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort_limit.h"
#include "obs/clock.h"
#include "workload/genealogy.h"

namespace cobra::exec {
namespace {

std::vector<Row> IntRows(int64_t n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Int(i % 3)});
  }
  return rows;
}

std::unique_ptr<Iterator> Scan(int64_t n) {
  return std::make_unique<VectorScan>(IntRows(n));
}

std::vector<AggSpec> CountStar() {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFn::kCount, nullptr});
  return aggs;
}

// Drains an already-open iterator, returning the row count.  Fails the test
// on any error.
size_t CountRows(Iterator* op, size_t batch_capacity = 7) {
  RowBatch batch(batch_capacity);
  size_t total = 0;
  for (;;) {
    auto n = op->NextBatch(&batch);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    if (!n.ok() || *n == 0) break;
    total += *n;
  }
  return total;
}

struct OperatorCase {
  std::string name;
  std::function<std::unique_ptr<Iterator>()> make;
  size_t expected_rows;
};

std::vector<OperatorCase> ConformanceCases() {
  static obs::SteadyClock clock;
  std::vector<OperatorCase> cases;
  cases.push_back({"VectorScan", [] { return Scan(10); }, 10});
  cases.push_back({"Filter",
                   [] {
                     return std::make_unique<Filter>(
                         Scan(10), Cmp(CmpOp::kLt, Col(0), LitInt(6)));
                   },
                   6});
  cases.push_back({"Project",
                   [] {
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(Col(1));
                     return std::make_unique<Project>(Scan(10),
                                                      std::move(exprs));
                   },
                   10});
  cases.push_back({"Sort",
                   [] {
                     std::vector<SortKey> keys;
                     keys.push_back(SortKey{Col(1), false});
                     return std::make_unique<Sort>(Scan(10), std::move(keys));
                   },
                   10});
  cases.push_back(
      {"Limit", [] { return std::make_unique<Limit>(Scan(10), 4); }, 4});
  cases.push_back({"HashAggregate",
                   [] {
                     std::vector<ExprPtr> group_by;
                     group_by.push_back(Col(1));
                     return std::make_unique<HashAggregate>(
                         Scan(10), std::move(group_by), CountStar());
                   },
                   3});
  cases.push_back({"Distinct",
                   [] {
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(Col(1));
                     return std::make_unique<Distinct>(
                         std::make_unique<Project>(Scan(10),
                                                   std::move(exprs)));
                   },
                   3});
  // 6 rows keyed on i%3: three key groups of 2 rows each -> 3 * 2 * 2 pairs.
  cases.push_back({"HashJoin",
                   [] {
                     std::vector<ExprPtr> lk, rk;
                     lk.push_back(Col(1));
                     rk.push_back(Col(1));
                     return std::make_unique<HashJoin>(Scan(6), Scan(6),
                                                       std::move(lk),
                                                       std::move(rk));
                   },
                   12});
  // Pairs over 0..3 with i%3 == j%3: (0,0) (0,3) (1,1) (2,2) (3,0) (3,3).
  cases.push_back({"NestedLoopJoin",
                   [] {
                     return std::make_unique<NestedLoopJoin>(
                         Scan(4), Scan(4),
                         Cmp(CmpOp::kEq, Col(1), Col(3)));
                   },
                   6});
  cases.push_back({"ProfiledPipeline",
                   [] {
                     return PlanBuilder::FromRows(IntRows(10))
                         .Profile(&clock)
                         .Filter(Cmp(CmpOp::kLt, Col(0), LitInt(5)))
                         .Build();
                   },
                   5});
  return cases;
}

TEST(BatchLifecycleTest, OpenDrainCloseCloseIsClean) {
  for (const OperatorCase& c : ConformanceCases()) {
    SCOPED_TRACE(c.name);
    auto op = c.make();
    ASSERT_TRUE(op->Open().ok());
    EXPECT_EQ(CountRows(op.get()), c.expected_rows);
    // After end of stream the operator keeps reporting end of stream.
    RowBatch batch(4);
    auto again = op->NextBatch(&batch);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 0u);
    EXPECT_TRUE(op->Close().ok());
    EXPECT_TRUE(op->Close().ok()) << "second Close() must be a no-op";
  }
}

TEST(BatchLifecycleTest, PartialDrainThenCloseIsClean) {
  for (const OperatorCase& c : ConformanceCases()) {
    SCOPED_TRACE(c.name);
    auto op = c.make();
    ASSERT_TRUE(op->Open().ok());
    RowBatch batch(1);  // pull a single row, abandon the rest
    auto n = op->NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(*n, 1u);
    EXPECT_TRUE(op->Close().ok());
    EXPECT_TRUE(op->Close().ok());
  }
}

TEST(BatchLifecycleTest, OpenAfterCloseRestartsTheStream) {
  for (const OperatorCase& c : ConformanceCases()) {
    SCOPED_TRACE(c.name);
    auto op = c.make();
    // First pass: partial drain, close.
    ASSERT_TRUE(op->Open().ok());
    RowBatch batch(1);
    ASSERT_TRUE(op->NextBatch(&batch).ok());
    ASSERT_TRUE(op->Close().ok());
    // Second pass must see the full stream again.
    ASSERT_TRUE(op->Open().ok());
    EXPECT_EQ(CountRows(op.get()), c.expected_rows);
    EXPECT_TRUE(op->Close().ok());
  }
}

TEST(BatchLifecycleTest, AssemblyPlanConforms) {
  GenealogyOptions options;
  options.num_people = 60;
  options.seed = 7;
  auto built = BuildGenealogyDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(built).value();

  AssemblyOptions aopts;
  auto plan = MakeLivesCloseToFatherPlan(db.get(), aopts);

  ASSERT_TRUE(plan->Open().ok());
  size_t first = CountRows(plan.get());
  ASSERT_TRUE(plan->Close().ok());
  ASSERT_TRUE(plan->Close().ok());  // idempotent

  // Partial drain then close.
  ASSERT_TRUE(plan->Open().ok());
  RowBatch batch(1);
  ASSERT_TRUE(plan->NextBatch(&batch).ok());
  ASSERT_TRUE(plan->Close().ok());

  // Re-open sees the full stream again.
  ASSERT_TRUE(plan->Open().ok());
  EXPECT_EQ(CountRows(plan.get()), first);
  ASSERT_TRUE(plan->Close().ok());
}

TEST(RowBatchEdgeTest, ZeroCapacityBatchIsRejected) {
  auto op = Scan(3);
  ASSERT_TRUE(op->Open().ok());
  RowBatch degenerate(0);
  auto n = op->NextBatch(&degenerate);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsInvalidArgument()) << n.status().ToString();
  auto null_out = op->NextBatch(nullptr);
  ASSERT_FALSE(null_out.ok());
  EXPECT_TRUE(null_out.status().IsInvalidArgument());
  // The operator is still usable with a sane batch.
  RowBatch batch(8);
  auto ok = op->NextBatch(&batch);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3u);
  ASSERT_TRUE(op->Close().ok());
}

TEST(RowBatchEdgeTest, FinalBatchMayBePartial) {
  auto op = Scan(10);
  ASSERT_TRUE(op->Open().ok());
  RowBatch batch(4);
  std::vector<size_t> sizes;
  for (;;) {
    auto n = op->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    sizes.push_back(*n);
  }
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));
  ASSERT_TRUE(op->Close().ok());
}

TEST(RowBatchEdgeTest, EmptyInputGlobalAggregateEmitsOneRow) {
  // Global aggregation over an empty input must still produce the single
  // global row (COUNT(*) == 0) through the batch path.
  auto agg = std::make_unique<HashAggregate>(Scan(0), std::vector<ExprPtr>{},
                                             CountStar());
  ASSERT_TRUE(agg->Open().ok());
  RowBatch batch(8);
  auto n = agg->NextBatch(&batch);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  ASSERT_EQ(*n, 1u);
  ASSERT_EQ(batch[0].size(), 1u);
  EXPECT_EQ(batch[0][0].AsInt(), 0);
  auto eos = agg->NextBatch(&batch);
  ASSERT_TRUE(eos.ok());
  EXPECT_EQ(*eos, 0u);
  ASSERT_TRUE(agg->Close().ok());
}

TEST(ErrorPropagationTest, CorruptionSurfacesThroughFilterAssemblyTree) {
  // Every page read fails, so the assembly operator hits a mid-stream
  // Corruption while resolving references.  Under the default kFailQuery
  // policy the error must surface through the Filter above it — with the
  // originating operator's name prefixed — rather than being swallowed or
  // converted to a short row count.
  GenealogyOptions options;
  options.num_people = 80;
  options.seed = 5;
  options.faults.seed = 9;
  options.faults.permanent_page_fail = 1.0;
  auto built = BuildGenealogyDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(built).value();
  ASSERT_TRUE(db->ColdRestart().ok());

  AssemblyOptions aopts;  // default ErrorPolicy::kFailQuery
  auto plan = MakeLivesCloseToFatherPlan(db.get(), aopts);
  auto rows = DrainAll(plan.get());
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsCorruption()) << rows.status().ToString();
  EXPECT_NE(rows.status().message().find("Assembly: "), std::string::npos)
      << "error lost its originating-operator context: "
      << rows.status().ToString();
}

TEST(ErrorPropagationTest, AnnotateErrorKeepsCodeAndPrefixesOperator) {
  Status corrupt = Status::Corruption("page 12 checksum mismatch");
  Status annotated = AnnotateError(corrupt, "BTreeScan");
  EXPECT_TRUE(annotated.IsCorruption());
  EXPECT_EQ(annotated.message(), "BTreeScan: page 12 checksum mismatch");
  // OK statuses pass through untouched.
  EXPECT_TRUE(AnnotateError(Status::OK(), "Filter").ok());
}

}  // namespace
}  // namespace cobra::exec
