#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "common/rng.h"
#include "file/heap_file.h"
#include "index/btree.h"
#include "storage/disk.h"

namespace cobra {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 1024}), allocator_(0) {}

  BTree Create() {
    auto tree = BTree::Create(&buffer_, &allocator_);
    EXPECT_TRUE(tree.ok());
    return std::move(tree).value();
  }

  // Drains the tree through an iterator.
  std::vector<std::pair<uint64_t, uint64_t>> Drain(const BTree& tree,
                                                   uint64_t from = 0) {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    auto it = tree.Seek(from);
    EXPECT_TRUE(it.ok());
    uint64_t k = 0;
    uint64_t v = 0;
    for (;;) {
      auto has = it->Next(&k, &v);
      EXPECT_TRUE(has.ok());
      if (!*has) break;
      out.push_back({k, v});
    }
    return out;
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  PageAllocator allocator_;
};

TEST_F(BTreeTest, EmptyTree) {
  BTree tree = Create();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Get(1).status().IsNotFound());
  EXPECT_FALSE(tree.Contains(1));
  EXPECT_TRUE(Drain(tree).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, SingleKey) {
  BTree tree = Create();
  ASSERT_TRUE(tree.Put(5, 50).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Get(5), 50u);
  EXPECT_EQ(*tree.Height(), 1);
}

TEST_F(BTreeTest, PutOverwrites) {
  BTree tree = Create();
  ASSERT_TRUE(tree.Put(5, 50).ok());
  ASSERT_TRUE(tree.Put(5, 51).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Get(5), 51u);
}

TEST_F(BTreeTest, InsertRejectsDuplicate) {
  BTree tree = Create();
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  EXPECT_TRUE(tree.Insert(5, 51).IsAlreadyExists());
  EXPECT_EQ(*tree.Get(5), 50u);
}

TEST_F(BTreeTest, SequentialInsertSplitsLeaves) {
  BTree tree = Create();
  const uint64_t n = 1000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Put(k, k * 10).ok()) << k;
  }
  EXPECT_EQ(tree.size(), n);
  EXPECT_GE(*tree.Height(), 2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_EQ(*tree.Get(k), k * 10) << k;
  }
  auto all = Drain(tree);
  ASSERT_EQ(all.size(), n);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_EQ(all[k].first, k);
  }
}

TEST_F(BTreeTest, ReverseInsert) {
  BTree tree = Create();
  for (uint64_t k = 500; k > 0; --k) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto all = Drain(tree);
  ASSERT_EQ(all.size(), 500u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST_F(BTreeTest, RandomInsertMatchesStdMap) {
  BTree tree = Create();
  std::map<uint64_t, uint64_t> model;
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    uint64_t k = rng.NextBounded(5000);
    uint64_t v = rng.NextU64();
    ASSERT_TRUE(tree.Put(k, v).ok());
    model[k] = v;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(*tree.Get(k), v);
  }
  auto all = Drain(tree);
  ASSERT_EQ(all.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(all[i].first, k);
    EXPECT_EQ(all[i].second, v);
    ++i;
  }
}

TEST_F(BTreeTest, DeleteFromLeafNoUnderflow) {
  BTree tree = Create();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  ASSERT_TRUE(tree.Delete(4).ok());
  EXPECT_EQ(tree.size(), 9u);
  EXPECT_TRUE(tree.Get(4).status().IsNotFound());
  EXPECT_TRUE(tree.Contains(5));
}

TEST_F(BTreeTest, DeleteMissingKeyIsNotFound) {
  BTree tree = Create();
  ASSERT_TRUE(tree.Put(1, 1).ok());
  EXPECT_TRUE(tree.Delete(2).IsNotFound());
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BTreeTest, DeleteEverythingSequentially) {
  BTree tree = Create();
  const uint64_t n = 800;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Delete(k).ok()) << k;
    if (k % 97 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after deleting " << k;
    }
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(Drain(tree).empty());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, DeleteEverythingReverse) {
  BTree tree = Create();
  const uint64_t n = 800;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  for (uint64_t k = n; k > 0; --k) {
    ASSERT_TRUE(tree.Delete(k - 1).ok()) << k - 1;
  }
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, RandomInsertDeleteMatchesStdMap) {
  BTree tree = Create();
  std::map<uint64_t, uint64_t> model;
  Rng rng(999);
  for (int i = 0; i < 6000; ++i) {
    uint64_t k = rng.NextBounded(700);
    if (rng.NextBool(0.45) && !model.empty()) {
      // Delete a key that exists about half the time.
      uint64_t target = rng.NextBool(0.5) ? k : model.begin()->first;
      Status s = tree.Delete(target);
      if (model.erase(target) > 0) {
        ASSERT_TRUE(s.ok()) << "delete " << target << ": " << s.ToString();
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {
      uint64_t v = rng.NextBounded(1 << 20);
      ASSERT_TRUE(tree.Put(k, v).ok());
      model[k] = v;
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << i;
      ASSERT_EQ(tree.size(), model.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto all = Drain(tree);
  ASSERT_EQ(all.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(all[i].first, k);
    ASSERT_EQ(all[i].second, v);
    ++i;
  }
}

TEST_F(BTreeTest, SeekFindsLowerBound) {
  BTree tree = Create();
  for (uint64_t k = 0; k < 100; k += 10) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  auto from_35 = Drain(tree, 35);
  ASSERT_FALSE(from_35.empty());
  EXPECT_EQ(from_35.front().first, 40u);
  EXPECT_EQ(from_35.size(), 6u);
  auto from_40 = Drain(tree, 40);
  EXPECT_EQ(from_40.front().first, 40u);
  auto past_end = Drain(tree, 1000);
  EXPECT_TRUE(past_end.empty());
}

TEST_F(BTreeTest, SeekAcrossLeafBoundaries) {
  BTree tree = Create();
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Put(k * 2, k).ok());
  }
  // Only even keys exist: seek must land on the smallest even key >= probe,
  // even when it is a leaf's first entry.
  for (uint64_t probe = 1; probe < 999; probe += 111) {
    auto it = tree.Seek(probe);
    ASSERT_TRUE(it.ok());
    uint64_t k = 0;
    uint64_t v = 0;
    auto has = it->Next(&k, &v);
    ASSERT_TRUE(has.ok() && *has);
    EXPECT_EQ(k, probe % 2 == 0 ? probe : probe + 1);
  }
}

TEST_F(BTreeTest, OpenReattachesAfterFlush) {
  PageId meta;
  {
    BTree tree = Create();
    meta = tree.meta_page();
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(tree.Put(k, k + 1).ok());
    }
    ASSERT_TRUE(buffer_.FlushAll().ok());
  }
  auto reopened = BTree::Open(&buffer_, &allocator_, meta);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 300u);
  EXPECT_EQ(*reopened->Get(42), 43u);
  ASSERT_TRUE(reopened->CheckInvariants().ok());
}

TEST_F(BTreeTest, OpenRejectsGarbageMetaPage) {
  // A heap page is not a btree meta page.
  auto guard = buffer_.CreatePage(allocator_.Allocate());
  ASSERT_TRUE(guard.ok());
  guard->data()[0] = std::byte{0x12};
  guard->MarkDirty();
  PageId bogus = guard->page_id();
  guard->Release();
  EXPECT_TRUE(
      BTree::Open(&buffer_, &allocator_, bogus).status().IsCorruption());
}

TEST_F(BTreeTest, ExtremeKeysWork) {
  BTree tree = Create();
  ASSERT_TRUE(tree.Put(0, 1).ok());
  ASSERT_TRUE(tree.Put(~uint64_t{0}, 2).ok());
  ASSERT_TRUE(tree.Put(~uint64_t{0} - 1, 3).ok());
  EXPECT_EQ(*tree.Get(0), 1u);
  EXPECT_EQ(*tree.Get(~uint64_t{0}), 2u);
  auto all = Drain(tree);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.back().first, ~uint64_t{0});
}

TEST_F(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree = Create();
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(tree.Put(k, k).ok());
  }
  // 63 entries per leaf, 62 per internal: 20000 keys fit in height 3.
  EXPECT_LE(*tree.Height(), 4);
  EXPECT_GE(*tree.Height(), 3);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, MixedWorkloadKeepsIteratorOrder) {
  BTree tree = Create();
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Put(rng.NextBounded(100000), i).ok());
  }
  auto all = Drain(tree);
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

}  // namespace
}  // namespace cobra
