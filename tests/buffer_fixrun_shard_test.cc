// FixRun across buffer-pool shard boundaries.
//
// A sharded pool hashes pages to lock stripes, so a consecutive run almost
// always straddles shards: FixRun must lock every touched shard in
// canonical order, pin residents per shard, obtain frames per shard, and —
// on every error path (transient retries, permanent failures, exhausted
// shards) — release exactly the pins and frames it took.  These tests pin
// down the pin accounting (pinned_frames() returns to zero, DropAll
// succeeds) and the retry path under a sharded pool.  The file lives in
// the concurrency binary so TSan also checks the multi-threaded FixRun
// storm against FetchPage.

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "storage/checksum.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"

namespace cobra {
namespace {

// Raw pages bypass the buffer manager, so bytes [0, kPageChecksumSize) must
// stay zero ("unstamped"); the per-page marker byte lives just past the
// checksum field.
constexpr size_t kMarker = kPageChecksumSize;

void FillDisk(SimulatedDisk* disk, PageId first, size_t n) {
  std::vector<std::byte> page(disk->page_size());
  for (PageId id = first; id < first + n; ++id) {
    page[kMarker] = static_cast<std::byte>(id & 0xFF);
    ASSERT_TRUE(disk->WritePage(id, page.data()).ok());
  }
}

// A run over a many-sharded pool touches several stripes (MixPage spreads
// consecutive pages); every page must come back pinned and correct, and
// releasing the guards must leave zero pins.
TEST(FixRunShardTest, RunStraddlingShardsPinsAndReleasesAll) {
  SimulatedDisk disk;
  FillDisk(&disk, 100, 32);
  BufferManager pool(&disk, BufferOptions{.num_frames = 64, .num_shards = 8});
  ASSERT_GT(pool.num_shards(), 1u);
  {
    std::vector<Result<PageGuard>> guards;
    pool.FixRun(100, 32, true, &guards);
    ASSERT_EQ(guards.size(), 32u);
    for (size_t i = 0; i < guards.size(); ++i) {
      ASSERT_TRUE(guards[i].ok()) << "page " << (100 + i) << ": "
                                  << guards[i].status().ToString();
      EXPECT_EQ(guards[i]->page_id(), PageId{100 + i});
      EXPECT_EQ(guards[i]->data()[kMarker],
                std::byte{static_cast<uint8_t>((100 + i) & 0xFF)});
    }
    EXPECT_GT(pool.pinned_frames(), 0u);
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  // No leaked pin anywhere: DropAll refuses if any frame is still pinned.
  EXPECT_TRUE(pool.DropAll().ok());
}

// Mixed hits and misses: pre-warm a scattered subset so phase 1 pins
// residents in several shards while phase 2 does vectored reads around
// them.  Descending direction exercises the reversed transfer order.
TEST(FixRunShardTest, MixedResidencyAcrossShardsBothDirections) {
  SimulatedDisk disk;
  FillDisk(&disk, 0, 48);
  BufferManager pool(&disk, BufferOptions{.num_frames = 96, .num_shards = 8});
  for (PageId id : {PageId{3}, PageId{11}, PageId{12}, PageId{30}}) {
    auto guard = pool.FetchPage(id);
    ASSERT_TRUE(guard.ok());
  }
  for (bool ascending : {true, false}) {
    std::vector<Result<PageGuard>> guards;
    pool.FixRun(0, 48, ascending, &guards);
    ASSERT_EQ(guards.size(), 48u);
    for (size_t i = 0; i < guards.size(); ++i) {
      ASSERT_TRUE(guards[i].ok()) << "ascending=" << ascending << " page "
                                  << i;
      EXPECT_EQ(guards[i]->data()[kMarker], std::byte{static_cast<uint8_t>(i)});
    }
    guards.clear();
    EXPECT_EQ(pool.pinned_frames(), 0u);
  }
  EXPECT_TRUE(pool.DropAll().ok());
}

// Transient read faults during the vectored phase: the retry loop re-reads
// only the untransferred tail, counts its retries, and still returns every
// page pinned — with zero pins left after release (the retry error path
// must not leak the frames it had already handed out).
TEST(FixRunShardTest, TransientRetriesAcrossShardsLeakNothing) {
  FaultProfile profile;
  profile.seed = 11;
  profile.transient_read_fail = 0.25;
  FaultInjectingDisk disk(profile);
  FillDisk(&disk, 0, 40);
  disk.set_enabled(true);
  RetryPolicy retry;
  retry.max_read_attempts = 8;  // enough that 0.25 never exhausts
  BufferManager pool(&disk, BufferOptions{.num_frames = 80,
                                          .retry = retry,
                                          .num_shards = 8});
  std::vector<Result<PageGuard>> guards;
  pool.FixRun(0, 40, true, &guards);
  ASSERT_EQ(guards.size(), 40u);
  for (size_t i = 0; i < guards.size(); ++i) {
    ASSERT_TRUE(guards[i].ok()) << "page " << i << ": "
                                << guards[i].status().ToString();
  }
  EXPECT_GT(pool.stats().retries, 0u);
  guards.clear();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  disk.set_enabled(false);
  EXPECT_TRUE(pool.DropAll().ok());
}

// A shard too small for its share of the run: the starved pages report
// ResourceExhausted without poisoning their neighbors, and the error slots
// hold no frame (the successful ones release cleanly).
TEST(FixRunShardTest, ExhaustedShardReportsWithoutLeaking) {
  SimulatedDisk disk;
  FillDisk(&disk, 0, 64);
  // 8 shards x ~2 frames each: a 64-page run overruns every shard.
  BufferManager pool(&disk, BufferOptions{.num_frames = 16, .num_shards = 8});
  std::vector<Result<PageGuard>> guards;
  pool.FixRun(0, 64, true, &guards);
  ASSERT_EQ(guards.size(), 64u);
  size_t ok = 0;
  size_t exhausted = 0;
  for (const auto& guard : guards) {
    if (guard.ok()) {
      ++ok;
    } else if (guard.status().IsResourceExhausted()) {
      ++exhausted;
    } else {
      FAIL() << "unexpected error: " << guard.status().ToString();
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(exhausted, 0u);
  guards.clear();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  // Every starved page is still fetchable one-at-a-time afterwards.
  for (PageId id = 0; id < 4; ++id) {
    auto guard = pool.FetchPage(id);
    EXPECT_TRUE(guard.ok());
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_TRUE(pool.DropAll().ok());
}

// TSan target: concurrent overlapping FixRuns and FetchPages over one
// sharded pool.  The canonical shard-lock order must keep this
// deadlock-free, the pin accounting exact.
TEST(FixRunShardTest, ConcurrentFixRunStorm) {
  SimulatedDisk disk;
  FillDisk(&disk, 0, 128);
  BufferManager pool(&disk,
                     BufferOptions{.num_frames = 512, .num_shards = 8});
  constexpr size_t kThreads = 6;
  constexpr size_t kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const PageId first = (t * 13 + round * 7) % 96;
        if (t % 2 == 0) {
          std::vector<Result<PageGuard>> guards;
          pool.FixRun(first, 24, round % 2 == 0, &guards);
          for (const auto& guard : guards) {
            ASSERT_TRUE(guard.ok() ||
                        guard.status().IsResourceExhausted());
          }
        } else {
          for (PageId id = first; id < first + 8; ++id) {
            auto guard = pool.FetchPage(id);
            ASSERT_TRUE(guard.ok() ||
                        guard.status().IsResourceExhausted());
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_TRUE(pool.DropAll().ok());
}

}  // namespace
}  // namespace cobra
