#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/replacement.h"
#include "storage/checksum.h"
#include "storage/disk.h"

namespace cobra {
namespace {

// Raw pages bypass the buffer manager, so bytes [0, kPageChecksumSize) must
// stay zero ("unstamped"); the marker byte lives just past the checksum
// field.
constexpr size_t kMarker = kPageChecksumSize;

void FillDisk(SimulatedDisk* disk, PageId count) {
  std::vector<std::byte> page(disk->page_size());
  for (PageId p = 0; p < count; ++p) {
    page[kMarker] = static_cast<std::byte>(p & 0xFF);
    ASSERT_TRUE(disk->WritePage(p, page.data()).ok());
  }
  disk->ResetStats();
}

TEST(BufferTest, FetchReadsThroughOnFault) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  auto guard = buffer.FetchPage(2);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[kMarker], std::byte{2});
  EXPECT_EQ(buffer.stats().faults, 1u);
  EXPECT_EQ(buffer.stats().hits, 0u);
}

TEST(BufferTest, SecondFetchIsHit) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(buffer.stats().faults, 1u);
  EXPECT_EQ(buffer.stats().hits, 1u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_DOUBLE_EQ(buffer.stats().HitRate(), 0.5);
}

TEST(BufferTest, FetchMissingPageFails) {
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 2});
  EXPECT_TRUE(buffer.FetchPage(99).status().IsNotFound());
  // The failed fetch must not leak the frame.
  EXPECT_TRUE(buffer.CreatePage(0).ok());
  EXPECT_TRUE(buffer.CreatePage(1).ok());
}

TEST(BufferTest, CreatePageZeroFilledAndDirty) {
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  auto guard = buffer.CreatePage(7);
  ASSERT_TRUE(guard.ok());
  for (std::byte b : guard->data()) {
    ASSERT_EQ(b, std::byte{0});
  }
  guard->data()[kMarker] = std::byte{0xEE};
  guard->Release();
  ASSERT_TRUE(buffer.FlushAll().ok());
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(7, out.data()).ok());
  EXPECT_EQ(out[kMarker], std::byte{0xEE});
}

TEST(BufferTest, CreateExistingPageFails) {
  SimulatedDisk disk;
  FillDisk(&disk, 1);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  EXPECT_TRUE(buffer.CreatePage(0).status().IsAlreadyExists());
}

TEST(BufferTest, EvictionWritesBackDirtyVictim) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 2});
  {
    auto g = buffer.FetchPage(0);
    ASSERT_TRUE(g.ok());
    g->data()[kMarker] = std::byte{0x77};
    g->MarkDirty();
  }
  // Fill both frames with other pages, evicting page 0.
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(2); ASSERT_TRUE(g.ok()); }
  EXPECT_GE(buffer.stats().evictions, 1u);
  EXPECT_GE(buffer.stats().dirty_writebacks, 1u);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out[kMarker], std::byte{0x77});
}

TEST(BufferTest, PinnedPagesAreNotEvicted) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 2});
  auto pinned = buffer.FetchPage(0);
  ASSERT_TRUE(pinned.ok());
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(2); ASSERT_TRUE(g.ok()); }
  // Page 0 stayed resident throughout.
  EXPECT_TRUE(buffer.IsResident(0));
  EXPECT_EQ(pinned->data()[kMarker], std::byte{0});
}

TEST(BufferTest, AllFramesPinnedIsResourceExhausted) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 2});
  auto g0 = buffer.FetchPage(0);
  auto g1 = buffer.FetchPage(1);
  ASSERT_TRUE(g0.ok() && g1.ok());
  EXPECT_TRUE(buffer.FetchPage(2).status().IsResourceExhausted());
  g0->Release();
  EXPECT_TRUE(buffer.FetchPage(2).ok());
}

TEST(BufferTest, LruEvictsLeastRecentlyUsed) {
  SimulatedDisk disk;
  FillDisk(&disk, 4);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 3});
  { auto g = buffer.FetchPage(0); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(2); ASSERT_TRUE(g.ok()); }
  // Touch 0 so 1 becomes the LRU.
  { auto g = buffer.FetchPage(0); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(3); ASSERT_TRUE(g.ok()); }
  EXPECT_TRUE(buffer.IsResident(0));
  EXPECT_FALSE(buffer.IsResident(1));
  EXPECT_TRUE(buffer.IsResident(2));
}

TEST(BufferTest, ClockPolicyEvictsAndStaysCorrect) {
  SimulatedDisk disk;
  FillDisk(&disk, 16);
  BufferManager buffer(&disk, BufferOptions{
                                  .num_frames = 4,
                                  .replacement = ReplacementKind::kClock});
  for (PageId p = 0; p < 16; ++p) {
    auto g = buffer.FetchPage(p);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[kMarker], std::byte{static_cast<uint8_t>(p)});
  }
  EXPECT_EQ(buffer.stats().faults, 16u);
  EXPECT_EQ(buffer.stats().evictions, 12u);
}

TEST(BufferTest, MaxPinnedHighWaterMark) {
  SimulatedDisk disk;
  FillDisk(&disk, 8);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  {
    auto a = buffer.FetchPage(0);
    auto b = buffer.FetchPage(1);
    auto c = buffer.FetchPage(2);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(buffer.pinned_frames(), 3u);
  }
  EXPECT_EQ(buffer.pinned_frames(), 0u);
  EXPECT_EQ(buffer.stats().max_pinned, 3u);
}

TEST(BufferTest, MultiplePinsOnSamePage) {
  SimulatedDisk disk;
  FillDisk(&disk, 2);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  auto a = buffer.FetchPage(0);
  auto b = buffer.FetchPage(0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(buffer.pinned_frames(), 1u);  // one frame, pin count 2
  a->Release();
  EXPECT_EQ(buffer.pinned_frames(), 1u);
  b->Release();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(BufferTest, GuardMoveTransfersPin) {
  SimulatedDisk disk;
  FillDisk(&disk, 2);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  auto a = buffer.FetchPage(0);
  ASSERT_TRUE(a.ok());
  PageGuard moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(a->valid());
  EXPECT_EQ(buffer.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(BufferTest, RefetchTraceCountsReReads) {
  SimulatedDisk disk;
  FillDisk(&disk, 8);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 2});
  // Cycle through 4 pages twice with only 2 frames: 8 faults, 4 unique.
  for (int round = 0; round < 2; ++round) {
    for (PageId p = 0; p < 4; ++p) {
      auto g = buffer.FetchPage(p);
      ASSERT_TRUE(g.ok());
    }
  }
  EXPECT_EQ(buffer.stats().faults, 8u);
  EXPECT_EQ(buffer.unique_pages_faulted(), 4u);
}

TEST(BufferTest, FlushPageOnlyWritesDirty) {
  SimulatedDisk disk;
  FillDisk(&disk, 2);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  { auto g = buffer.FetchPage(0); ASSERT_TRUE(g.ok()); }
  disk.ResetStats();
  ASSERT_TRUE(buffer.FlushPage(0).ok());
  EXPECT_EQ(disk.stats().writes, 0u);  // clean page: no write-back
  EXPECT_TRUE(buffer.FlushPage(5).IsNotFound());
}

TEST(LruPolicyTest, VictimSkipsUnevictable) {
  LruPolicy lru;
  lru.RecordAccess(0);
  lru.RecordAccess(1);
  lru.RecordAccess(2);
  auto victim = lru.Victim([](size_t f) { return f != 0; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
}

TEST(LruPolicyTest, EmptyReturnsNullopt) {
  LruPolicy lru;
  EXPECT_FALSE(lru.Victim([](size_t) { return true; }).has_value());
}

TEST(ClockPolicyTest, SecondChanceOrder) {
  ClockPolicy clock(3);
  clock.RecordAccess(0);
  clock.RecordAccess(1);
  clock.RecordAccess(2);
  // First sweep clears all reference bits; victim is frame 0.
  auto victim = clock.Victim([](size_t) { return true; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);
}

TEST(ClockPolicyTest, AllPinnedReturnsNullopt) {
  ClockPolicy clock(2);
  clock.RecordAccess(0);
  clock.RecordAccess(1);
  EXPECT_FALSE(clock.Victim([](size_t) { return false; }).has_value());
}

}  // namespace
}  // namespace cobra
