// Crash-point sweep for the assembled-object cache (ctest label `crash`).
//
// The cache is process memory: no crash can leave a stale entry behind,
// because no entry survives the crash at all.  What CAN go wrong is the
// ordering around commit: the service applies cache invalidation under the
// writer-exclusive lock *before* the durability wait, so there are two
// windows a power cut can land in —
//
//   * before the commit record is durable: recovery rolls the pages back,
//     and the (already-invalidated, already-gone) cache state is moot;
//   * after the commit record is durable: recovery redoes the pages, and
//     the restarted stack builds a fresh cache from them.
//
// Either way the restarted cache must be COLD (zero resident entries) and
// its first fill must reflect exactly the recovered pages.  This sweep runs
// a cached write workload — populate, patch, structurally invalidate —
// against a power cut scheduled at every write boundary, in both crash
// modes, and asserts that after recovery a fresh cache assembles exactly
// the durable object graph, serves it again from hits, and that
// acknowledged commits are visible through the cache.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "cache/cached_assembly.h"
#include "cache/object_cache.h"
#include "file/heap_file.h"
#include "object/assembled_object.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/faulty_disk.h"
#include "wal/wal.h"

namespace cobra {
namespace {

constexpr PageId kDataFirst = 0;
constexpr size_t kDataPages = 8;
constexpr PageId kLogFirst = 64;
constexpr size_t kLogPages = 128;

constexpr Oid kRoot1 = 1, kChild1 = 2, kRoot2 = 3, kChild2 = 4;

wal::WalOptions LogOptions() {
  wal::WalOptions options;
  options.log_first_page = kLogFirst;
  options.log_max_pages = kLogPages;
  return options;
}

ObjectData MakeRoot(Oid oid, Oid child, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 1;
  obj.fields = {tag, 0, 0, 0};
  obj.refs.assign(8, kInvalidOid);
  obj.refs[0] = child;
  return obj;
}

ObjectData MakeChild(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 2;
  obj.fields = {tag, 0, 0, 0};
  obj.refs.assign(8, kInvalidOid);
  return obj;
}

// root(type 1) --slot 0--> child(type 2), predicate-free (patchable space).
struct PairTemplate {
  AssemblyTemplate tmpl;
  PairTemplate() {
    TemplateNode* root = tmpl.AddNode("root");
    TemplateNode* child = tmpl.AddNode("child");
    root->expected_type = 1;
    child->expected_type = 2;
    root->children.push_back({0, child});
    tmpl.SetRoot(root);
  }
};

struct Ack {
  bool t1 = false;  // populate
  bool t2 = false;  // scalar patch of child1
  bool t3 = false;  // structural update of root2
};

// The cached write workload.  Mirrors the service's commit protocol
// (mutate -> ApplyCommittedWrite -> durability wait) single-threaded; the
// crash can land on any underlying page write, including mid-commit.
uint64_t RunCachedWorkload(FaultInjectingDisk* disk, uint64_t crash_after,
                           CrashWriteMode mode, Ack* ack) {
  disk->ScheduleCrash(crash_after, mode);
  {
    wal::WalManager wal(disk, LogOptions());
    if (!wal.Recover().ok()) return disk->writes_survived();
    BufferManager buffer(disk, BufferOptions{.num_frames = 32});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);
    HashDirectory directory;
    ObjectStore store(&buffer, &directory);
    store.set_wal(&wal);
    cache::ObjectCache cache;
    PairTemplate pair;

    auto assemble = [&](std::vector<Oid> roots) {
      AssemblyOptions aopts;
      (void)cache::AssembleThroughCache(&cache, &pair.tmpl, &store,
                                        std::move(roots), aopts,
                                        /*batch_size=*/8, nullptr);
    };
    auto locate_page = [&](Oid oid) -> PageId {
      auto loc = store.Locate(oid);
      return loc.ok() ? loc->page : kInvalidPageId;
    };

    // t1: populate two root/child pairs, then warm the cache.
    {
      auto t = store.BeginTxn();
      if (t.ok()) {
        bool ok = store.InsertTxn(*t, MakeChild(kChild1, 100), &file).ok() &&
                  store.InsertTxn(*t, MakeChild(kChild2, 200), &file).ok() &&
                  store.InsertTxn(*t, MakeRoot(kRoot1, kChild1, 10), &file)
                      .ok() &&
                  store.InsertTxn(*t, MakeRoot(kRoot2, kChild2, 20), &file)
                      .ok();
        if (!ok) {
          (void)store.AbortTxn(*t);
        } else if (store.CommitTxn(*t).ok()) {
          ack->t1 = true;
        }
      }
    }
    assemble({kRoot1, kRoot2});

    // t2: scalar patch of child1 — service order: mutate, apply to cache,
    // THEN wait for durability.  The crash may hit between the last two.
    {
      auto t = store.BeginTxn();
      if (t.ok()) {
        ObjectData after = MakeChild(kChild1, 2222);
        if (!store.UpdateTxn(*t, after, &file).ok()) {
          (void)store.AbortTxn(*t);
        } else {
          cache.ApplyCommittedWrite(
              {{locate_page(kChild1), /*patch=*/true, after}});
          if (store.CommitTxn(*t).ok()) ack->t2 = true;
        }
      }
    }
    assemble({kRoot1, kRoot2});

    // t3: structural update of root2 (a reference slot changes), which
    // invalidates instead of patching.
    {
      auto t = store.BeginTxn();
      if (t.ok()) {
        ObjectData after = MakeRoot(kRoot2, kChild2, 20);
        after.refs[7] = kRoot1;
        if (!store.UpdateTxn(*t, after, &file).ok()) {
          (void)store.AbortTxn(*t);
        } else {
          cache.ApplyCommittedWrite(
              {{locate_page(kRoot2), /*patch=*/false, {}}});
          if (store.CommitTxn(*t).ok()) ack->t3 = true;
        }
      }
    }
    assemble({kRoot1, kRoot2});
    (void)buffer.FlushAll();
  }
  return disk->writes_survived();
}

// Restart: recover, rebuild the directory from the heap scan, and check
// that a FRESH cache starts cold and its fills match the durable pages.
void VerifyColdConsistentCache(FaultInjectingDisk* disk, const Ack& ack,
                               const std::string& label) {
  SCOPED_TRACE(label);
  disk->ClearCrash();

  wal::WalManager wal(disk, LogOptions());
  Status recovered = wal.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  BufferManager buffer(disk, BufferOptions{.num_frames = 32});
  buffer.set_write_gate(&wal);
  auto file = HeapFile::Open(&buffer, kDataFirst, kDataPages);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  HashDirectory directory;
  std::map<Oid, ObjectData> durable;
  {
    auto cursor = file->Scan();
    RecordId rid;
    std::vector<std::byte> record;
    for (;;) {
      auto more = cursor.Next(&rid, &record);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      auto obj = ObjectData::Deserialize(record);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      ASSERT_TRUE(directory.Put(obj->oid, rid).ok());
      durable[obj->oid] = *obj;
    }
  }
  // Acknowledged commits are durable — visible to any post-restart fill.
  if (ack.t1) {
    ASSERT_TRUE(durable.contains(kRoot1) && durable.contains(kChild1));
  }
  if (ack.t2) EXPECT_EQ(durable.at(kChild1).fields[0], 2222);
  if (ack.t3) EXPECT_EQ(durable.at(kRoot2).refs[7], kRoot1);

  ObjectStore store(&buffer, &directory);
  cache::ObjectCache cache;
  EXPECT_EQ(cache.resident_entries(), 0u);  // cold, trivially consistent
  PairTemplate pair;

  std::vector<Oid> live_roots;
  for (const auto& [oid, obj] : durable) {
    if (obj.type_id == 1) live_roots.push_back(oid);
  }
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass=" + std::to_string(pass));
    std::map<Oid, std::vector<int32_t>> delivered;
    auto result = cache::AssembleThroughCache(
        &cache, &pair.tmpl, &store, live_roots, AssemblyOptions{},
        /*batch_size=*/8, nullptr, [&](const AssembledObject& got) {
          VisitAssembled(&got, [&](const AssembledObject& node) {
            delivered[node.oid] = node.fields;
          });
        });
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.rows, live_roots.size());
    if (pass == 0) {
      EXPECT_EQ(result.cache_misses, live_roots.size());
    } else {
      EXPECT_EQ(result.cache_hits, live_roots.size());
    }
    // Every delivered value is the durable one: the restarted cache cannot
    // remember pre-crash state it never saw.
    for (const auto& [oid, fields] : delivered) {
      ASSERT_TRUE(durable.contains(oid)) << "phantom oid " << oid;
      EXPECT_EQ(fields, durable.at(oid).fields) << "oid " << oid;
    }
  }
}

void SweepCachedCrashPoints(CrashWriteMode mode, const char* mode_name) {
  uint64_t total_writes = 0;
  {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    total_writes = RunCachedWorkload(&disk, ~uint64_t{0}, mode, &ack);
    ASSERT_TRUE(ack.t1 && ack.t2 && ack.t3);
    ASSERT_FALSE(disk.crash_triggered());
    VerifyColdConsistentCache(&disk, ack,
                              std::string(mode_name) + " uncrashed");
  }
  ASSERT_GT(total_writes, 5u) << "workload too small to be interesting";

  for (uint64_t n = 0; n < total_writes; ++n) {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    RunCachedWorkload(&disk, n, mode, &ack);
    EXPECT_TRUE(disk.crash_triggered()) << "crash point " << n << " unused";
    VerifyColdConsistentCache(&disk, ack,
                              std::string(mode_name) + " crash after " +
                                  std::to_string(n) + " writes");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CacheCrash, DropWriteSweepRestartsCold) {
  SweepCachedCrashPoints(CrashWriteMode::kDropWrite, "drop");
}

TEST(CacheCrash, TornWriteSweepRestartsCold) {
  SweepCachedCrashPoints(CrashWriteMode::kTornWrite, "torn");
}

}  // namespace
}  // namespace cobra
