// Randomized churn over the assembled-object cache (ctest label `stress`;
// CI also runs this binary under -fsanitize=address).
//
// Each seed generates a random assembly template (depth, branching, shared
// borders, sometimes a predicate), a random object graph placed on random
// heap pages, and a small cache under one of the four replacement policies.
// The churn loop then interleaves cached assembly, page invalidations,
// scalar patches (applied to the store first, then to the cache — the
// commit-order the service enforces), pins across invalidations, Clear and
// schema bumps, asserting after every step that
//
//   * no entry survives an invalidation of a page in its footprint,
//   * every resident entry's values match the store image exactly,
//   * shared-segment refcounts drain to zero on teardown.
//
// Seeds are pinned and embedded in the test name, so a failing ctest line
// reproduces the exact graph and schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "cache/cache_policy.h"
#include "cache/cached_assembly.h"
#include "cache/object_cache.h"
#include "file/heap_file.h"
#include "object/assembled_object.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using cache::CacheOptions;
using cache::CachePolicyKind;
using cache::CommittedWrite;
using cache::ObjectCache;

constexpr size_t kComplexObjects = 32;
constexpr size_t kDataPages = 400;
constexpr size_t kChurnSteps = 200;

class CacheFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheFuzzTest, RandomGraphsSurviveInvalidationChurn) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  std::mt19937_64 rng(seed);

  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 1024});
  HashDirectory directory;
  ObjectStore store(&buffer, &directory);
  HeapFile file(&buffer, 0, 512);

  // Random template: 2-4 levels, 1-3 children per node, distinct types,
  // some non-root borders marked shared.  A third of the seeds get an
  // (always-true) predicate, which makes the space invalidate-only.
  AssemblyTemplate tmpl;
  TypeId next_type = 1;
  const int levels_below_root = 1 + static_cast<int>(rng() % 3);
  std::function<TemplateNode*(int)> grow = [&](int depth) {
    TemplateNode* node = tmpl.AddNode();
    node->expected_type = next_type++;
    if (depth > 0) {
      const size_t kids = 1 + rng() % 3;
      for (size_t k = 0; k < kids; ++k) {
        TemplateNode* child = grow(depth - 1);
        if (rng() % 4 == 0) child->shared = true;
        node->children.push_back({static_cast<int>(k), child});
      }
    }
    return node;
  };
  TemplateNode* root_node = grow(levels_below_root);
  tmpl.SetRoot(root_node);
  const bool predicated = rng() % 3 == 0;
  if (predicated) {
    root_node->predicate = [](const ObjectData&) { return true; };
  }
  ASSERT_TRUE(tmpl.Validate().ok());

  // Random conforming object graph on random pages.  `image` is the ground
  // truth every resident entry is checked against; shared borders reuse
  // earlier instances half the time.
  std::map<Oid, ObjectData> image;
  std::map<const TemplateNode*, std::vector<Oid>> shared_instances;
  std::function<Oid(const TemplateNode*)> materialize =
      [&](const TemplateNode* node) -> Oid {
    std::vector<Oid>& pool = shared_instances[node];
    if (node->shared && !pool.empty() && rng() % 2 == 0) {
      return pool[rng() % pool.size()];
    }
    ObjectData obj;
    obj.oid = store.AllocateOid();
    obj.type_id = node->expected_type;
    obj.fields = {static_cast<int32_t>(rng() % 10'000), 0, 0, 0};
    obj.refs.assign(8, kInvalidOid);
    for (const TemplateNode::ChildEdge& edge : node->children) {
      obj.refs[edge.ref_slot] = materialize(edge.child);
    }
    Status stored = Status::Internal("unplaced");
    for (int attempt = 0; attempt < 64 && !stored.ok(); ++attempt) {
      stored = store.InsertAtPage(obj, &file, rng() % kDataPages).status();
    }
    if (!stored.ok()) stored = store.Insert(obj, &file).status();
    EXPECT_TRUE(stored.ok()) << stored.ToString();
    image[obj.oid] = obj;
    if (node->shared) pool.push_back(obj.oid);
    return obj.oid;
  };
  std::vector<Oid> roots;
  for (size_t i = 0; i < kComplexObjects; ++i) {
    roots.push_back(materialize(tmpl.root()));
  }

  // Per-root page footprints, from the same directory the cache uses.
  std::map<Oid, std::set<PageId>> footprint;
  std::set<PageId> used_pages;
  {
    NaiveAssembler naive(&store, &tmpl);
    ObjectArena arena;
    for (Oid root : roots) {
      auto obj = naive.AssembleOne(root, &arena);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      ASSERT_NE(*obj, nullptr);
      for (Oid oid : CollectOids(*obj)) {
        auto loc = store.Locate(oid);
        ASSERT_TRUE(loc.ok());
        footprint[root].insert(loc->page);
        used_pages.insert(loc->page);
      }
    }
  }
  std::vector<PageId> page_list(used_pages.begin(), used_pages.end());
  std::vector<Oid> oid_list;
  for (const auto& [oid, data] : image) oid_list.push_back(oid);

  const CachePolicyKind kPolicies[] = {
      CachePolicyKind::kTwoQ, CachePolicyKind::kArc, CachePolicyKind::kLru,
      CachePolicyKind::kClock};
  ObjectCache cache(CacheOptions{
      .capacity = 8 + rng() % 16,  // far below the root count: churn
      .policy = kPolicies[seed % 4]});

  // Resident entries must always agree with the store image; a survivor of
  // a footprint invalidation or a missed patch fails here.
  auto verify_if_resident = [&](Oid root) {
    ObjectCache::Ref ref = cache.Lookup(&tmpl, root);
    if (!ref) return;
    VisitAssembled(ref.object, [&](const AssembledObject& node) {
      auto it = image.find(node.oid);
      if (it == image.end()) {
        ADD_FAILURE() << "cached node with unknown oid " << node.oid;
        return;
      }
      EXPECT_EQ(node.fields, it->second.fields)
          << "stale cached value for oid " << node.oid << " under root "
          << root;
    });
    cache.Release(ref);
  };

  auto assemble_batch = [&](const std::vector<Oid>& batch) {
    AssemblyOptions aopts;
    aopts.window_size = 4;
    auto result = cache::AssembleThroughCache(
        &cache, &tmpl, &store, batch, aopts, /*batch_size=*/8,
        /*observer=*/nullptr, [&](const AssembledObject& got) {
          VisitAssembled(&got, [&](const AssembledObject& node) {
            auto it = image.find(node.oid);
            ASSERT_NE(it, image.end());
            EXPECT_EQ(node.fields, it->second.fields)
                << "delivered stale oid " << node.oid;
          });
        });
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.rows, batch.size());
  };

  assemble_batch(roots);  // initial population (partially evicted already)

  std::vector<ObjectCache::Ref> pinned;
  for (size_t step = 0; step < kChurnSteps; ++step) {
    SCOPED_TRACE("step=" + std::to_string(step));
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // cached assembly over a random batch
        std::vector<Oid> batch;
        const size_t n = 2 + rng() % 6;
        for (size_t i = 0; i < n; ++i) {
          batch.push_back(roots[rng() % roots.size()]);
        }
        assemble_batch(batch);
        break;
      }
      case 3:
      case 4: {  // page invalidation: nothing touching the page survives
        PageId page = page_list[rng() % page_list.size()];
        cache.ApplyCommittedWrite({{page, /*patch=*/false, {}}});
        for (Oid root : roots) {
          if (footprint[root].count(page) != 0) {
            EXPECT_FALSE(cache.Lookup(&tmpl, root))
                << "entry survived invalidation of page " << page;
          }
        }
        break;
      }
      case 5: {  // scalar patch: store first, then cache (commit order)
        Oid target = oid_list[rng() % oid_list.size()];
        ObjectData after = image.at(target);
        after.fields[0] = static_cast<int32_t>(rng() % 10'000);
        ASSERT_TRUE(store.Update(after).ok());
        image[target] = after;
        auto loc = store.Locate(target);
        ASSERT_TRUE(loc.ok());
        cache.ApplyCommittedWrite({{loc->page, /*patch=*/true, after}});
        if (predicated) {
          // Invalidate-only space: the patch must have dropped instead.
          for (Oid root : roots) {
            if (footprint[root].count(loc->page) != 0) {
              EXPECT_FALSE(cache.Lookup(&tmpl, root))
                  << "predicated entry survived a write to page "
                  << loc->page;
            }
          }
        }
        break;
      }
      case 6: {  // pin across future invalidations, release in bulk later
        ObjectCache::Ref ref = cache.Lookup(&tmpl, roots[rng() % roots.size()]);
        if (ref) pinned.push_back(ref);
        if (rng() % 4 == 0) {
          for (const ObjectCache::Ref& held : pinned) cache.Release(held);
          pinned.clear();
        }
        break;
      }
      case 7: {  // rare global barriers
        if (rng() % 8 == 0) {
          cache.Clear();
          EXPECT_EQ(cache.resident_entries(), 0u);
        } else if (rng() % 8 == 1) {
          cache.BumpSchemaVersion();
          for (Oid root : roots) {
            EXPECT_FALSE(cache.Lookup(&tmpl, root))
                << "entry survived the schema barrier";
          }
        }
        break;
      }
    }
    // Global invariant sweep: every resident entry matches the image.
    for (Oid root : roots) verify_if_resident(root);
    // Pinned entries cannot be evicted, so they may hold the cache above
    // capacity; everything evictable is bounded.
    EXPECT_LE(cache.resident_entries(), cache.capacity() + pinned.size());
  }

  for (const ObjectCache::Ref& held : pinned) cache.Release(held);
  pinned.clear();
  EXPECT_EQ(cache.pinned_entries(), 0u);

  // Teardown: everything drains, refcounts reach zero.
  cache.Clear();
  EXPECT_EQ(cache.resident_entries(), 0u);
  EXPECT_EQ(cache.shared_segment_count(), 0u);
  EXPECT_EQ(cache.total_shared_refs(), 0u);
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
  EXPECT_GT(cache.stats().insertions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CacheFuzzTest,
    ::testing::Values<uint64_t>(1, 7, 42, 1337, 9001, 424242),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "Seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace cobra
