// Stale-read property harness for the assembled-object cache (ctest label
// `concurrency`; CI also runs this binary under -fsanitize=thread).
//
// The property: a cached read is NEVER stale.  Readers drain assembly
// queries through a QueryService whose ServiceOptions::cache is live, while
// writer threads commit scalar patches, structural updates, inserts, and
// aborted transactions against the same component population.  Every
// delivered complex object — cache hit or fresh assembly — is cross-checked
// against a shadow NaiveAssembler walk over the same buffer pool and
// directory, *inside the same shared-lock hold* that produced it (QueryJob::
// on_object), so the comparison sees exactly the pages the reader could see.
// Commit-time invalidation under the writer-exclusive lock is what makes the
// property hold; any early, late, or missed invalidation shows up here as a
// field mismatch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "assembly/naive.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "cache/object_cache.h"
#include "file/heap_file.h"
#include "object/assembled_object.h"
#include "object/object.h"
#include "object/object_store.h"
#include "service/query_service.h"
#include "storage/disk.h"
#include "wal/wal.h"
#include "workload/acob.h"

namespace cobra {
namespace {

// Pinned explicitly so a failure line reproduces with this exact schedule
// seed; every thread derives its stream from it.
constexpr uint64_t kSeed = 42;
constexpr size_t kWriters = 4;
constexpr size_t kTxnsPerWriter = 20;
constexpr size_t kReaderJobs = 24;

// Field values by OID over the whole reachable graph: the value identity
// compared between the delivered object and its shadow assembly.  (Node
// *instance* counts may differ legitimately — the cache deduplicates shared
// borders into segments, the naive walk refetches — but the values may not.)
std::map<Oid, std::vector<int32_t>> FieldsByOid(const AssembledObject* root) {
  std::map<Oid, std::vector<int32_t>> fields;
  VisitAssembled(root, [&fields](const AssembledObject& node) {
    fields[node.oid] = node.fields;
  });
  return fields;
}

TEST(CacheProperty, ConcurrentCachedReadsMatchShadowAssembly) {
  SCOPED_TRACE("kSeed=" + std::to_string(kSeed));
  AcobOptions options;
  options.num_complex_objects = 96;
  options.clustering = Clustering::kUnclustered;
  options.sharing = 0.25;  // shared leaf pool: the fig15 stress case
  options.seed = kSeed;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  // Component discovery + before-images, single-threaded, before any
  // traffic: writers build patchable updates from these base images.
  std::vector<Oid> components;
  std::vector<Oid> root0_components;
  std::map<Oid, ObjectData> base_image;
  {
    NaiveAssembler naive(db->store.get(), &db->tmpl);
    ObjectArena arena;
    std::set<Oid> seen;
    for (Oid root : db->roots) {
      auto obj = naive.AssembleOne(root, &arena);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      ASSERT_NE(*obj, nullptr);
      for (Oid oid : CollectOids(*obj)) seen.insert(oid);
      if (root == db->roots[0]) {
        for (Oid oid : CollectOids(*obj)) {
          if (oid != root) root0_components.push_back(oid);
        }
      }
    }
    components.assign(seen.begin(), seen.end());
    for (Oid oid : components) {
      auto data = db->store->Get(oid);
      ASSERT_TRUE(data.ok()) << data.status().ToString();
      base_image[oid] = *data;
    }
  }
  // Disjoint target partitions keep scalar updates patchable for the whole
  // run: a scalar target's refs never change, so its before-image always
  // matches the base refs.
  std::vector<Oid> scalar_targets, struct_targets;
  for (size_t i = 0; i < components.size(); ++i) {
    (i % 5 == 0 ? struct_targets : scalar_targets).push_back(components[i]);
  }
  ASSERT_FALSE(scalar_targets.empty());
  ASSERT_FALSE(struct_targets.empty());

  // Write-path stack: the log extent past the workload data, and the
  // service's heap file REOPENED over the workload extent itself (plus tail
  // room for inserts) so updates can target the very objects the cached
  // assemblies are built from.
  const PageId base = db->disk->page_span();
  wal::WalOptions wal_options;
  wal_options.log_first_page = base + 128;
  wal_options.log_max_pages = 4096;
  wal::WalManager wal(db->disk.get(), wal_options);
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager pool(db->disk.get(),
                     BufferOptions{.num_frames = 4096, .num_shards = 8});
  pool.set_write_gate(&wal);
  auto write_file = HeapFile::Open(&pool, 0, db->data_pages + 64);
  ASSERT_TRUE(write_file.ok()) << write_file.status().ToString();
  write_file->set_wal(&wal);

  // Sized to hold both template spaces entirely: this harness isolates the
  // staleness property; replacement churn is covered by cache_fuzz_test.
  cache::ObjectCache cache(cache::CacheOptions{.capacity = 256});

  service::ServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.wal = &wal;
  service_options.write_file = &*write_file;
  service_options.next_oid = db->store->next_oid() + 1'000'000;
  service_options.cache = &cache;
  service::QueryService service(&pool, db->directory.get(), service_options);

  // A second space over the same data: same shape, but predicated, so its
  // entries are invalidate-only (a scalar change could flip membership).
  std::vector<TemplateNode*> pred_nodes;
  AssemblyTemplate pred_tmpl =
      MakeBinaryTreeTemplate(options.levels, &pred_nodes);
  pred_nodes[0]->predicate = [](const ObjectData&) { return true; };
  pred_nodes.back()->shared = db->nodes.back()->shared;
  pred_nodes.back()->sharing_degree = db->nodes.back()->sharing_degree;

  std::atomic<uint64_t> objects_checked{0};
  std::atomic<uint64_t> mismatches{0};
  std::mutex diag_mu;
  std::string first_diag;
  auto shadow_check = [&](const AssemblyTemplate* tmpl) {
    return [&, tmpl](const AssembledObject& got) {
      // Same pool, same directory, same shared-lock hold as the delivery.
      ObjectStore shadow_store(&pool, db->directory.get());
      NaiveAssembler shadow(&shadow_store, tmpl);
      ObjectArena arena;
      auto want = shadow.AssembleOne(got.oid, &arena);
      objects_checked.fetch_add(1, std::memory_order_relaxed);
      std::string diag;
      if (!want.ok()) {
        diag = "shadow assembly failed: " + want.status().ToString();
      } else if (*want == nullptr) {
        diag = "shadow rejected root " + std::to_string(got.oid);
      } else if (FieldsByOid(&got) != FieldsByOid(*want)) {
        diag = "STALE READ: root " + std::to_string(got.oid) +
               " delivered values differ from shadow assembly";
      }
      if (!diag.empty()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(diag_mu);
        if (first_diag.empty()) first_diag = diag;
      }
    };
  };

  auto make_job = [&](const AssemblyTemplate* tmpl, std::vector<Oid> roots,
                      const std::string& client) {
    service::QueryJob job;
    job.client = client;
    job.tmpl = tmpl;
    job.roots = std::move(roots);
    job.assembly.window_size = 8;
    job.assembly.scheduler = SchedulerKind::kElevator;
    job.on_object = shadow_check(tmpl);
    return job;
  };

  // Warmup: populate both spaces so the write traffic hits resident entries.
  {
    std::vector<std::future<service::QueryResult>> warm;
    warm.push_back(service.Submit(make_job(&db->tmpl, db->roots, "warm0")));
    warm.push_back(service.Submit(make_job(&pred_tmpl, db->roots, "warm1")));
    for (auto& f : warm) {
      service::QueryResult result = f.get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(result.rows, db->roots.size());
    }
  }
  ASSERT_EQ(mismatches.load(), 0u) << first_diag;
  EXPECT_EQ(cache.resident_entries(), 2 * db->roots.size());

  // Concurrent phase: 4 writer threads vs. 4 service workers.
  std::atomic<uint64_t> write_failures{0};
  std::string first_write_diag;
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::mt19937_64 rng(kSeed * 1000 + w);
      std::vector<Oid> own_inserts;
      Oid next_insert = db->store->next_oid() + static_cast<Oid>(w) * 10'000;
      for (size_t j = 0; j < kTxnsPerWriter; ++j) {
        service::WriteJob job;
        job.client = "writer" + std::to_string(w);
        job.abort = j % 7 == 6;
        // Scalar patch: base image with one field bumped (same type, same
        // refs, same shape — the patchable path).
        {
          service::WriteOp op;
          op.kind = service::WriteOp::Kind::kUpdate;
          op.obj = base_image.at(scalar_targets[rng() % scalar_targets.size()]);
          op.obj.fields[0] = static_cast<int32_t>(20'000 + w * 1'000 + j);
          job.ops.push_back(op);
        }
        // Structural update: an unused reference slot changes, which must
        // invalidate (assembly structure could depend on it).
        if (j % 2 == 1) {
          service::WriteOp op;
          op.kind = service::WriteOp::Kind::kUpdate;
          op.obj = base_image.at(struct_targets[rng() % struct_targets.size()]);
          op.obj.refs[7] = db->roots[rng() % db->roots.size()];
          job.ops.push_back(op);
        }
        // Inserts append past the workload data in the same extent; their
        // pages never intersect the footprints of the cached workload roots.
        if (j % 4 == 0) {
          service::WriteOp op;
          op.kind = service::WriteOp::Kind::kInsert;
          op.obj.oid = next_insert++;
          op.obj.type_id = 99;
          op.obj.fields = {int32_t(j), 0, 0, 0};
          op.obj.refs = {};
          if (!job.abort) own_inserts.push_back(op.obj.oid);
          job.ops.push_back(op);
        }
        if (j % 6 == 5 && !own_inserts.empty()) {
          service::WriteOp op;
          op.kind = service::WriteOp::Kind::kRemove;
          op.oid = own_inserts.back();
          own_inserts.pop_back();
          job.ops.push_back(op);
        }
        service::WriteResult result = service.ExecuteWrite(job);
        if (!result.status.ok()) {
          write_failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(diag_mu);
          if (first_write_diag.empty()) {
            first_write_diag = result.status.ToString();
          }
        }
        if (result.status.ok() && job.abort) EXPECT_TRUE(result.aborted);
      }
    });
  }
  std::vector<std::future<service::QueryResult>> queries;
  {
    std::mt19937_64 rng(kSeed * 9001);
    for (size_t q = 0; q < kReaderJobs; ++q) {
      std::vector<Oid> roots;
      for (size_t k = 0; k < 12; ++k) {
        roots.push_back(db->roots[rng() % db->roots.size()]);
      }
      const AssemblyTemplate* tmpl = q % 2 == 0 ? &db->tmpl : &pred_tmpl;
      queries.push_back(
          service.Submit(make_job(tmpl, std::move(roots),
                                  "reader" + std::to_string(q))));
    }
  }
  for (auto& t : writers) t.join();
  uint64_t rows = 0;
  for (auto& f : queries) {
    service::QueryResult result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    rows += result.rows;
  }
  service.Drain();
  EXPECT_EQ(rows, kReaderJobs * 12);
  EXPECT_EQ(write_failures.load(), 0u) << first_write_diag;
  EXPECT_EQ(mismatches.load(), 0u) << first_diag;
  EXPECT_GT(objects_checked.load(), 2 * db->roots.size());

  cache::CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.invalidations + stats.patches, 0u);
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_EQ(wal.active_txns(), 0u);

  // Deterministic tail, single-threaded: one scalar patch and one
  // structural invalidation made visible end to end.
  ObjectStore reader(&pool, db->directory.get());
  const Oid root0 = db->roots[0];
  service.Submit(make_job(&db->tmpl, {root0}, "tail-warm")).get();
  const Oid target = root0_components.front();
  {
    auto current = reader.Get(target);
    ASSERT_TRUE(current.ok());
    service::WriteJob job;
    service::WriteOp op;
    op.kind = service::WriteOp::Kind::kUpdate;
    op.obj = *current;
    op.obj.fields[0] = 424'242;
    job.ops.push_back(op);
    const uint64_t patches_before = cache.stats().patches;
    ASSERT_TRUE(service.ExecuteWrite(job).status.ok());
    EXPECT_GT(cache.stats().patches, patches_before);
    // The patched value is what the cache serves now.
    cache::ObjectCache::Ref ref = cache.Lookup(&db->tmpl, root0);
    ASSERT_TRUE(ref);
    bool found = false;
    VisitAssembled(ref.object, [&](const AssembledObject& node) {
      if (node.oid == target) {
        EXPECT_EQ(node.fields[0], 424'242);
        found = true;
      }
    });
    EXPECT_TRUE(found);
    cache.Release(ref);
  }
  {
    auto current = reader.Get(target);
    ASSERT_TRUE(current.ok());
    service::WriteJob job;
    service::WriteOp op;
    op.kind = service::WriteOp::Kind::kUpdate;
    op.obj = *current;
    op.obj.refs[7] =
        current->refs[7] == db->roots[1] ? db->roots[2] : db->roots[1];
    job.ops.push_back(op);
    const uint64_t invalidations_before = cache.stats().invalidations;
    ASSERT_TRUE(service.ExecuteWrite(job).status.ok());
    EXPECT_GT(cache.stats().invalidations, invalidations_before);
    // The reference change dropped every entry whose footprint covers the
    // target's page — root0's entry among them.
    EXPECT_FALSE(cache.Lookup(&db->tmpl, root0));
  }
}

}  // namespace
}  // namespace cobra
