// Unit coverage for the assembled-object cache (src/cache/): hit/miss
// behavior, footprint invalidation vs. in-place patching, shared-segment
// refcounting, replacement policies, pins/zombies, and the schema barrier.
// The multi-threaded stale-read property harness lives in
// cache_property_test.cc; randomized graph teardown in cache_fuzz_test.cc.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/template.h"
#include "buffer/buffer_manager.h"
#include "cache/cache_policy.h"
#include "cache/cached_assembly.h"
#include "cache/object_cache.h"
#include "file/heap_file.h"
#include "object/assembled_object.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using cache::CacheOptions;
using cache::CachePolicyKind;
using cache::CachedAssemblyResult;
using cache::CommittedWrite;
using cache::MakeCachePolicy;
using cache::ObjectCache;
using cache::WriteEffect;

// Hand-built micro-database with explicit physical placement, so tests can
// reason about exactly which pages a cached entry's footprint covers.
class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 512}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 256) {}

  Oid Put(TypeId type, std::vector<int32_t> fields, std::vector<Oid> refs,
          size_t page) {
    ObjectData obj;
    obj.oid = store_.AllocateOid();
    obj.type_id = type;
    obj.fields = std::move(fields);
    obj.refs = std::move(refs);
    obj.refs.resize(8, kInvalidOid);
    auto stored = store_.InsertAtPage(obj, &file_, page);
    EXPECT_TRUE(stored.ok()) << stored.status().ToString();
    return obj.oid;
  }

  PageId PageOf(Oid oid) {
    Result<RecordId> loc = store_.Locate(oid);
    EXPECT_TRUE(loc.ok()) << loc.status().ToString();
    return loc->page;
  }

  // Drains `roots` through the cache (or uncached when cache == nullptr) and
  // returns per-root field sums so value equality can be asserted across
  // cached / uncached / patched runs.
  CachedAssemblyResult Run(ObjectCache* cache, const AssemblyTemplate* tmpl,
                           const std::vector<Oid>& roots,
                           std::map<Oid, int64_t>* sums_out = nullptr) {
    AssemblyOptions options;
    auto on_object = [sums_out](const AssembledObject& obj) {
      if (sums_out != nullptr) (*sums_out)[obj.oid] = SumField(&obj, 0);
    };
    CachedAssemblyResult result = cache::AssembleThroughCache(
        cache, tmpl, &store_, roots, options, /*batch_size=*/16,
        /*observer=*/nullptr, on_object);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return result;
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
};

// root(type 1) -> mid(type 2) -> leaf(type 3), one object per page.
struct ChainTemplate {
  AssemblyTemplate tmpl;
  TemplateNode* root;
  TemplateNode* mid;
  TemplateNode* leaf;

  ChainTemplate() {
    root = tmpl.AddNode("root");
    mid = tmpl.AddNode("mid");
    leaf = tmpl.AddNode("leaf");
    root->expected_type = 1;
    mid->expected_type = 2;
    leaf->expected_type = 3;
    root->children.push_back({0, mid});
    mid->children.push_back({0, leaf});
    tmpl.SetRoot(root);
  }
};

TEST_F(CacheTest, SecondPassHitsWithoutDiskReads) {
  ChainTemplate ct;
  std::vector<Oid> roots;
  for (size_t i = 0; i < 4; ++i) {
    Oid leaf = Put(3, {int32_t(30 + i)}, {}, 3 * i + 2);
    Oid mid = Put(2, {int32_t(20 + i)}, {leaf}, 3 * i + 1);
    roots.push_back(Put(1, {int32_t(10 + i)}, {mid}, 3 * i));
  }

  ObjectCache cache;
  std::map<Oid, int64_t> first, second;
  CachedAssemblyResult cold = Run(&cache, &ct.tmpl, roots, &first);
  EXPECT_EQ(cold.rows, 4u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 4u);
  EXPECT_EQ(cache.stats().insertions, 4u);
  EXPECT_EQ(cache.resident_entries(), 4u);

  const uint64_t reads_after_cold = disk_.stats().reads;
  CachedAssemblyResult warm = Run(&cache, &ct.tmpl, roots, &second);
  EXPECT_EQ(warm.rows, 4u);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.cache_misses, 0u);
  // A hit is served from the resident copy: zero disk I/O.
  EXPECT_EQ(disk_.stats().reads, reads_after_cold);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

TEST_F(CacheTest, CachedValuesMatchUncached) {
  ChainTemplate ct;
  std::vector<Oid> roots;
  for (size_t i = 0; i < 8; ++i) {
    Oid leaf = Put(3, {int32_t(300 + i)}, {}, 3 * i + 2);
    Oid mid = Put(2, {int32_t(200 + i)}, {leaf}, 3 * i + 1);
    roots.push_back(Put(1, {int32_t(100 + i)}, {mid}, 3 * i));
  }

  std::map<Oid, int64_t> uncached_sums;
  CachedAssemblyResult uncached =
      Run(nullptr, &ct.tmpl, roots, &uncached_sums);
  EXPECT_EQ(uncached.cache_hits, 0u);
  EXPECT_EQ(uncached.cache_misses, 0u);

  ObjectCache cache;
  std::map<Oid, int64_t> cold_sums, warm_sums;
  Run(&cache, &ct.tmpl, roots, &cold_sums);
  Run(&cache, &ct.tmpl, roots, &warm_sums);
  EXPECT_EQ(uncached_sums, cold_sums);
  EXPECT_EQ(uncached_sums, warm_sums);
}

TEST_F(CacheTest, FootprintInvalidationDropsOnlyIntersectingEntries) {
  ChainTemplate ct;
  Oid leaf_a = Put(3, {30}, {}, 2);
  Oid mid_a = Put(2, {20}, {leaf_a}, 1);
  Oid root_a = Put(1, {10}, {mid_a}, 0);
  Oid leaf_b = Put(3, {31}, {}, 5);
  Oid mid_b = Put(2, {21}, {leaf_b}, 4);
  Oid root_b = Put(1, {11}, {mid_b}, 3);

  ObjectCache cache;
  Run(&cache, &ct.tmpl, {root_a, root_b});
  ASSERT_EQ(cache.resident_entries(), 2u);

  // A write to A's mid page kills exactly A's entry; B is untouched.
  WriteEffect effect =
      cache.ApplyCommittedWrite({{PageOf(mid_a), /*patch=*/false, {}}});
  EXPECT_EQ(effect.invalidated, 1u);
  EXPECT_EQ(effect.patched, 0u);
  EXPECT_EQ(cache.resident_entries(), 1u);
  EXPECT_FALSE(cache.Lookup(&ct.tmpl, root_a));
  ObjectCache::Ref b = cache.Lookup(&ct.tmpl, root_b);
  EXPECT_TRUE(b);
  cache.Release(b);

  // The dropped entry is gone from the page index entirely: a second write
  // to another page of A's old footprint invalidates nothing.
  effect = cache.ApplyCommittedWrite({{PageOf(leaf_a), false, {}}});
  EXPECT_EQ(effect.invalidated, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST_F(CacheTest, ScalarPatchVisibleOnNextLookup) {
  ChainTemplate ct;
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  ObjectCache cache;
  std::map<Oid, int64_t> before;
  Run(&cache, &ct.tmpl, {root}, &before);
  EXPECT_EQ(before[root], 10 + 20 + 30);

  // Scalar-only update of the leaf: same type, same refs, same shape —
  // the write path reports it as patchable and the entry stays resident.
  ObjectData after;
  after.oid = leaf;
  after.type_id = 3;
  after.fields = {99};
  WriteEffect effect =
      cache.ApplyCommittedWrite({{PageOf(leaf), /*patch=*/true, after}});
  EXPECT_EQ(effect.patched, 1u);
  EXPECT_EQ(effect.invalidated, 0u);
  EXPECT_EQ(cache.resident_entries(), 1u);

  ObjectCache::Ref ref = cache.Lookup(&ct.tmpl, root);
  ASSERT_TRUE(ref);
  EXPECT_EQ(SumField(ref.object, 0), 10 + 20 + 99);
  cache.Release(ref);
  EXPECT_EQ(cache.stats().patches, 1u);
}

TEST_F(CacheTest, PredicatedTemplateInvalidatesInsteadOfPatching) {
  ChainTemplate ct;
  // Any predicate anywhere in the template makes the space invalidate-only:
  // a changed scalar can flip membership, not just values.
  ct.leaf->predicate = [](const ObjectData&) { return true; };
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  ObjectCache cache;
  Run(&cache, &ct.tmpl, {root});
  ASSERT_EQ(cache.resident_entries(), 1u);

  ObjectData after;
  after.oid = leaf;
  after.type_id = 3;
  after.fields = {99};
  WriteEffect effect =
      cache.ApplyCommittedWrite({{PageOf(leaf), /*patch=*/true, after}});
  EXPECT_EQ(effect.patched, 0u);
  EXPECT_EQ(effect.invalidated, 1u);
  EXPECT_EQ(cache.resident_entries(), 0u);
  EXPECT_FALSE(cache.Lookup(&ct.tmpl, root));
}

TEST_F(CacheTest, SharedSegmentReusedAndRefcounted) {
  // root(1) -> leaf(3) where the leaf border is marked shared and both
  // roots reference the SAME leaf object — the fig15 shape in miniature.
  AssemblyTemplate tmpl;
  TemplateNode* root_node = tmpl.AddNode("root");
  TemplateNode* leaf_node = tmpl.AddNode("leaf");
  root_node->expected_type = 1;
  leaf_node->expected_type = 3;
  leaf_node->shared = true;
  root_node->children.push_back({0, leaf_node});
  tmpl.SetRoot(root_node);

  Oid leaf = Put(3, {7}, {}, 2);
  Oid root_a = Put(1, {10}, {leaf}, 0);
  Oid root_b = Put(1, {11}, {leaf}, 1);

  ObjectCache cache;
  std::map<Oid, int64_t> sums;
  Run(&cache, &tmpl, {root_a, root_b}, &sums);
  EXPECT_EQ(sums[root_a], 17);
  EXPECT_EQ(sums[root_b], 18);
  // One resident segment, linked by both entries; the second link is a reuse.
  EXPECT_EQ(cache.shared_segment_count(), 1u);
  EXPECT_EQ(cache.stats().shared_reuses, 1u);
  EXPECT_EQ(cache.total_shared_refs(), 2u);

  // Both cached roots point at the one resident leaf copy.
  ObjectCache::Ref a = cache.Lookup(&tmpl, root_a);
  ObjectCache::Ref b = cache.Lookup(&tmpl, root_b);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  ASSERT_EQ(a.object->children.size(), 1u);
  ASSERT_EQ(b.object->children.size(), 1u);
  EXPECT_EQ(a.object->children[0], b.object->children[0]);
  cache.Release(a);
  cache.Release(b);

  // Dropping A (write to its private root page) releases one reference;
  // the segment survives for B.
  cache.ApplyCommittedWrite({{PageOf(root_a), false, {}}});
  EXPECT_EQ(cache.resident_entries(), 1u);
  EXPECT_EQ(cache.shared_segment_count(), 1u);
  EXPECT_EQ(cache.total_shared_refs(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.resident_entries(), 0u);
  EXPECT_EQ(cache.shared_segment_count(), 0u);
  EXPECT_EQ(cache.total_shared_refs(), 0u);
}

TEST_F(CacheTest, EvictionRespectsCapacityAndSkipsPinned) {
  ChainTemplate ct;
  std::vector<Oid> roots;
  for (size_t i = 0; i < 3; ++i) {
    Oid leaf = Put(3, {int32_t(30 + i)}, {}, 3 * i + 2);
    Oid mid = Put(2, {int32_t(20 + i)}, {leaf}, 3 * i + 1);
    roots.push_back(Put(1, {int32_t(10 + i)}, {mid}, 3 * i));
  }

  ObjectCache cache(CacheOptions{.capacity = 2, .policy = CachePolicyKind::kLru});
  Run(&cache, &ct.tmpl, {roots[0], roots[1]});
  ASSERT_EQ(cache.resident_entries(), 2u);

  // Pin roots[0]; inserting a third entry must evict the unpinned one.
  ObjectCache::Ref pinned = cache.Lookup(&ct.tmpl, roots[0]);
  ASSERT_TRUE(pinned);
  Run(&cache, &ct.tmpl, {roots[2]});
  EXPECT_EQ(cache.resident_entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  ObjectCache::Ref still_there = cache.Lookup(&ct.tmpl, roots[0]);
  EXPECT_TRUE(still_there);
  EXPECT_FALSE(cache.Lookup(&ct.tmpl, roots[1]));
  cache.Release(still_there);
  cache.Release(pinned);
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

TEST_F(CacheTest, PinnedEntrySurvivesInvalidationUntilReleased) {
  ChainTemplate ct;
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  ObjectCache cache;
  Run(&cache, &ct.tmpl, {root});
  ObjectCache::Ref ref = cache.Lookup(&ct.tmpl, root);
  ASSERT_TRUE(ref);

  cache.ApplyCommittedWrite({{PageOf(mid), false, {}}});
  EXPECT_EQ(cache.resident_entries(), 0u);
  EXPECT_FALSE(cache.Lookup(&ct.tmpl, root));
  // The reader's view stays valid and unchanged while pinned (zombie).
  EXPECT_EQ(cache.pinned_entries(), 1u);
  EXPECT_EQ(SumField(ref.object, 0), 10 + 20 + 30);

  cache.Release(ref);
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

TEST_F(CacheTest, SchemaBarrierFlushesEverySpace) {
  ChainTemplate ct;
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  ObjectCache cache;
  Run(&cache, &ct.tmpl, {root});
  ASSERT_EQ(cache.resident_entries(), 1u);
  const uint64_t version_before = cache.schema_version();

  cache.BumpSchemaVersion();
  EXPECT_EQ(cache.schema_version(), version_before + 1);
  EXPECT_EQ(cache.stats().schema_flushes, 1u);
  EXPECT_EQ(cache.resident_entries(), 0u);
  EXPECT_FALSE(cache.Lookup(&ct.tmpl, root));

  // The space is usable again under the new version.
  Run(&cache, &ct.tmpl, {root});
  ObjectCache::Ref ref = cache.Lookup(&ct.tmpl, root);
  EXPECT_TRUE(ref);
  cache.Release(ref);
}

// The cache-off regression, unit flavor: the disabled configuration must not
// even construct the cache layer (the CI half diffs bench JSON against the
// pre-cache goldens).
TEST_F(CacheTest, DisabledPathConstructsNoCache) {
  ChainTemplate ct;
  Oid leaf = Put(3, {30}, {}, 2);
  Oid mid = Put(2, {20}, {leaf}, 1);
  Oid root = Put(1, {10}, {mid}, 0);

  const uint64_t live_before = ObjectCache::live_instances();
  CachedAssemblyResult result = Run(nullptr, &ct.tmpl, {root});
  EXPECT_EQ(result.rows, 1u);
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_EQ(result.cache_misses, 0u);
  EXPECT_EQ(ObjectCache::live_instances(), live_before);
  {
    ObjectCache cache;
    EXPECT_EQ(ObjectCache::live_instances(), live_before + 1);
  }
  EXPECT_EQ(ObjectCache::live_instances(), live_before);
}

// --- replacement-policy unit tests (no cache, no I/O) ---

constexpr auto kAnyKey = [](uint64_t) { return true; };

TEST(CachePolicyTest, LruEvictsLeastRecentlyUsed) {
  auto lru = MakeCachePolicy(CachePolicyKind::kLru, 4);
  lru->OnInsert(1);
  lru->OnInsert(2);
  lru->OnInsert(3);
  lru->OnHit(1);  // 1 is now the most recent; 2 is the oldest untouched
  EXPECT_EQ(lru->Victim(kAnyKey), 2u);
  lru->OnEvict(2);
  EXPECT_EQ(lru->Victim(kAnyKey), 3u);
}

TEST(CachePolicyTest, ClockGivesSecondChanceToReferencedEntries) {
  auto clock = MakeCachePolicy(CachePolicyKind::kClock, 4);
  clock->OnInsert(1);
  clock->OnInsert(2);
  clock->OnInsert(3);
  clock->OnHit(1);
  // The hand starts at 1: its bit is set, so it gets a second chance and
  // the sweep settles on 2.
  EXPECT_EQ(clock->Victim(kAnyKey), 2u);
}

TEST(CachePolicyTest, TwoQScanDiesInFifoWithoutDisplacingHotSet) {
  // capacity 8 -> Kin = 2, Kout = 4.
  auto twoq = MakeCachePolicy(CachePolicyKind::kTwoQ, 8);
  // Key 1 falls out of the FIFO, then is re-referenced: promoted to Am.
  twoq->OnInsert(1);
  twoq->OnInsert(2);
  EXPECT_EQ(twoq->Victim(kAnyKey), 1u);  // FIFO order
  twoq->OnEvict(1);                       // 1 becomes a ghost (A1out)
  twoq->OnInsert(1);                      // ghost hit -> Am
  // A scan of one-touch keys churns through A1in; the proven-hot key 1 is
  // never chosen while scan entries remain.
  for (uint64_t key = 100; key < 110; ++key) {
    twoq->OnInsert(key);
    uint64_t victim = twoq->Victim(kAnyKey);
    EXPECT_NE(victim, 1u) << "scan displaced the hot entry";
    twoq->OnEvict(victim);
  }
  // With the FIFO drained below Kin, eviction falls back to Am and finds 1.
  while (true) {
    uint64_t victim = twoq->Victim(kAnyKey);
    ASSERT_NE(victim, 0u);
    twoq->OnEvict(victim);
    if (victim == 1u) break;
  }
}

TEST(CachePolicyTest, ArcProtectsReReferencedEntries) {
  auto arc = MakeCachePolicy(CachePolicyKind::kArc, 4);
  arc->OnInsert(1);
  arc->OnInsert(2);
  arc->OnInsert(3);
  arc->OnHit(2);  // promoted to the frequency list T2
  // T1 holds {3, 1}; the oldest one-touch entry loses, never the T2 member.
  EXPECT_EQ(arc->Victim(kAnyKey), 1u);
  arc->OnEvict(1);
  arc->OnInsert(4);  // T1 = {4, 3}, above the recency target again
  EXPECT_EQ(arc->Victim(kAnyKey), 3u);
}

TEST(CachePolicyTest, VictimSkipsUnevictableKeys) {
  auto lru = MakeCachePolicy(CachePolicyKind::kLru, 4);
  lru->OnInsert(1);
  lru->OnInsert(2);
  EXPECT_EQ(lru->Victim([](uint64_t key) { return key != 1; }), 2u);
  EXPECT_EQ(lru->Victim([](uint64_t) { return false; }), 0u);
}

TEST(CachePolicyTest, ParseRoundTripsEveryKind) {
  for (CachePolicyKind kind :
       {CachePolicyKind::kOff, CachePolicyKind::kTwoQ, CachePolicyKind::kArc,
        CachePolicyKind::kLru, CachePolicyKind::kClock}) {
    CachePolicyKind parsed;
    ASSERT_TRUE(
        cache::ParseCachePolicyKind(cache::CachePolicyKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  CachePolicyKind parsed;
  EXPECT_FALSE(cache::ParseCachePolicyKind("mru", &parsed));
  EXPECT_EQ(MakeCachePolicy(CachePolicyKind::kOff, 4), nullptr);
}

}  // namespace
}  // namespace cobra
