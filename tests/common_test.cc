#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace cobra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::set<std::string_view> names;
  for (auto code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange, StatusCode::kCorruption,
        StatusCode::kResourceExhausted, StatusCode::kAlreadyExists,
        StatusCode::kNotSupported, StatusCode::kInternal}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(StatusTest, CopyPreservesMessage) {
  Status a = Status::Corruption("bad checksum");
  Status b = a;          // copy construct
  Status c;
  c = b;                 // copy assign
  EXPECT_TRUE(c.IsCorruption());
  EXPECT_EQ(c.message(), "bad checksum");
  EXPECT_EQ(a.message(), "bad checksum");
}

TEST(StatusTest, MoveLeavesSourceUsable) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto helper = [](bool fail) -> Status {
    COBRA_RETURN_IF_ERROR(fail ? Status::OutOfRange("x") : Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(helper(true).IsOutOfRange());
  EXPECT_TRUE(helper(false).IsAlreadyExists());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such key");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  // Constructing a Result from an OK status is a bug; it must not silently
  // look like success.
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Corruption("inner");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    COBRA_ASSIGN_OR_RETURN(int x, inner(fail));
    return x * 2;
  };
  EXPECT_EQ(*outer(false), 14);
  EXPECT_TRUE(outer(true).status().IsCorruption());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, InRangeInclusive) {
  Rng rng(77);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(31);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

TEST(RngTest, BoolProbability) {
  Rng rng(55);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(88);
  std::vector<size_t> p = rng.Permutation(100);
  std::set<size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(4);
  Rng forked = a.Fork();
  // The fork and parent produce different streams.
  EXPECT_NE(a.NextU64(), forked.NextU64());
}

}  // namespace
}  // namespace cobra
