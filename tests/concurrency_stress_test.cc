// Deterministic-seed concurrency stress tests for the sharded buffer pool,
// the AsyncDisk I/O thread, and the query service (ctest label
// `concurrency`; CI also runs this binary under -fsanitize=thread).
//
// Data discipline: any thread may pin/unpin any page — the pool guarantees
// a pinned frame is never moved or evicted — but payload *writes* (and the
// reads that check them) stay on pages the thread owns (page % threads ==
// thread id), since the pool deliberately leaves frame-payload access to
// user-level synchronization, exactly like a real buffer manager.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "service/query_service.h"
#include "storage/async_disk.h"
#include "storage/checksum.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "workload/acob.h"

namespace cobra {
namespace {

constexpr size_t kThreads = 8;
// Payload byte inspected/mutated by the hammer loops (past the checksum).
constexpr size_t kMarker = kPageChecksumSize;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Stamps `count` pages through a throwaway pool so their checksums verify
// when the pool under test faults them in.  Page p carries marker byte p.
void WriteStampedPages(SimulatedDisk* disk, size_t count) {
  BufferManager writer(disk, BufferOptions{.num_frames = count});
  for (PageId p = 0; p < count; ++p) {
    auto guard = writer.CreatePage(p);
    ASSERT_TRUE(guard.ok());
    guard->data()[kMarker] = std::byte{static_cast<uint8_t>(p)};
  }
  ASSERT_TRUE(writer.FlushAll().ok());
}

// The shared hammer: each thread fetches seeded-random pages, checks the
// marker of pages it owns, occasionally dirties an owned page, and keeps a
// small stack of live guards so pins overlap.  Returns successful fetches
// (hits + faults must account for exactly these).
uint64_t HammerPool(BufferManager* pool, size_t num_pages, size_t iterations,
                    std::atomic<uint64_t>* fetch_failures) {
  std::vector<std::thread> threads;
  std::atomic<uint64_t> successes{0};
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      uint64_t rng = 0xC0FFEE ^ (tid * 0x9E3779B97F4A7C15ull);
      std::vector<PageGuard> held;
      for (size_t i = 0; i < iterations; ++i) {
        PageId page = SplitMix64(&rng) % num_pages;
        auto guard = pool->FetchPage(page);
        if (!guard.ok()) {
          // Only pin exhaustion is tolerated (every frame of the page's
          // shard can transiently be pinned by the held stacks).
          if (!guard.status().IsResourceExhausted()) ++*fetch_failures;
          continue;
        }
        ++successes;
        if (page % kThreads == tid) {
          EXPECT_EQ(guard->data()[kMarker],
                    std::byte{static_cast<uint8_t>(page)});
          if (SplitMix64(&rng) % 4 == 0) {
            guard->data()[kMarker + 1] = std::byte{static_cast<uint8_t>(tid)};
            guard->MarkDirty();
          }
        }
        if (SplitMix64(&rng) % 3 == 0 && held.size() < 4) {
          held.push_back(std::move(*guard));
        } else if (!held.empty() && SplitMix64(&rng) % 2 == 0) {
          held.pop_back();  // release an older pin from this thread
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return successes.load();
}

TEST(ShardedPoolStress, ConcurrentFetchesKeepEveryInvariant) {
  constexpr size_t kPages = 256;
  SimulatedDisk disk;
  WriteStampedPages(&disk, kPages);

  // Pool big enough to hold everything — 2x headroom because pages hash
  // unevenly across shards — so no evictions occur and hits + faults must
  // account for every fetch.
  BufferManager pool(&disk, BufferOptions{.num_frames = 2 * kPages,
                                          .num_shards = kThreads});
  ASSERT_EQ(pool.num_shards(), kThreads);
  std::atomic<uint64_t> hard_failures{0};
  uint64_t successes = HammerPool(&pool, kPages, 1000, &hard_failures);

  EXPECT_EQ(hard_failures.load(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  BufferStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.faults, successes);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.max_pinned, pool.num_frames());
  EXPECT_LE(pool.unique_pages_faulted(), kPages);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(pool.DropAll().ok());
}

TEST(ShardedPoolStress, EvictionPressureWithDirtyWritebacks) {
  constexpr size_t kPages = 256;
  SimulatedDisk disk;
  WriteStampedPages(&disk, kPages);

  // 4 frames per shard: constant eviction + write-back traffic.
  BufferManager pool(&disk, BufferOptions{.num_frames = 32,
                                          .num_shards = kThreads});
  std::atomic<uint64_t> hard_failures{0};
  uint64_t successes = HammerPool(&pool, kPages, 600, &hard_failures);

  EXPECT_EQ(hard_failures.load(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  BufferStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.faults, successes);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.dirty_writebacks, 0u);
  EXPECT_LE(stats.max_pinned, pool.num_frames());
  EXPECT_TRUE(pool.FlushAll().ok());

  // Write-backs preserved every page: the original marker survived and any
  // second byte is a valid owner id.
  for (PageId p = 0; p < kPages; ++p) {
    auto guard = pool.FetchPage(p);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[kMarker], std::byte{static_cast<uint8_t>(p)});
  }
}

TEST(AsyncDiskStress, ConcurrentSubmittersSeeTheirOwnData) {
  constexpr size_t kPages = 128;
  DiskOptions disk_options;
  SimulatedDisk backing(disk_options);
  std::vector<std::byte> page(disk_options.page_size);
  for (PageId p = 0; p < kPages; ++p) {
    page[0] = std::byte{static_cast<uint8_t>(p)};
    ASSERT_TRUE(backing.WritePage(p, page.data()).ok());
  }

  AsyncDisk async(&backing);
  async.set_target_queue_depth(kThreads);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> mismatches{0};
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      // Each thread reads its own residue class into private buffers, half
      // through futures, half through the blocking path.
      std::vector<std::vector<std::byte>> buffers;
      std::vector<std::pair<PageId, std::shared_future<Status>>> pending;
      for (PageId p = tid; p < kPages; p += kThreads) {
        buffers.emplace_back(disk_options.page_size);
        if (p % 2 == 0) {
          pending.emplace_back(p, async.SubmitRead(p, buffers.back().data()));
        } else {
          Status status = async.ReadPage(p, buffers.back().data());
          if (!status.ok() ||
              buffers.back()[0] != std::byte{static_cast<uint8_t>(p)}) {
            ++mismatches;
          }
        }
      }
      size_t index = 0;
      for (PageId p = tid; p < kPages; p += kThreads, ++index) {
        if (p % 2 != 0) continue;
        size_t slot = index;
        auto it = pending.begin();
        while (it != pending.end() && it->first != p) ++it;
        ASSERT_NE(it, pending.end());
        if (!it->second.get().ok() ||
            buffers[slot][0] != std::byte{static_cast<uint8_t>(p)}) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  async.Drain();

  EXPECT_EQ(mismatches.load(), 0u);
  AsyncDiskStats stats = async.async_stats();
  EXPECT_EQ(stats.reads_submitted, kPages);
  EXPECT_EQ(backing.stats().reads, kPages);
  EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(AsyncDiskStress, PrefetchRacesFetchWithoutLeaksOrCorruption) {
  constexpr size_t kPages = 96;
  SimulatedDisk backing;
  WriteStampedPages(&backing, kPages);

  AsyncDisk async(&backing);
  async.set_target_queue_depth(4);
  BufferManager pool(&async, BufferOptions{.num_frames = kPages,
                                          .num_shards = kThreads});
  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      uint64_t rng = 0xBEEF ^ tid;
      for (size_t i = 0; i < 300; ++i) {
        PageId page = SplitMix64(&rng) % kPages;
        if (SplitMix64(&rng) % 2 == 0) {
          // Prefetch threads race the fetchers for the same pages.
          (void)pool.PrefetchPage(page);
        } else {
          auto guard = pool.FetchPage(page);
          if (!guard.ok()) {
            if (!guard.status().IsResourceExhausted()) ++failures;
            continue;
          }
          if (guard->data()[kMarker] !=
              std::byte{static_cast<uint8_t>(page)}) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  // DropAll settles any still-pending prefetch reads, then evicts all.
  EXPECT_TRUE(pool.DropAll().ok());
  async.Drain();
  EXPECT_EQ(pool.stats().checksum_failures, 0u);
}

TEST(QueryServiceStress, DegradedModeInvariantsUnderFaultsAndConcurrency) {
  AcobOptions options;
  options.num_complex_objects = 200;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  options.faults = FaultProfile::Mixed(/*seed=*/7);
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  uint64_t total_rows = 0;
  uint64_t total_dropped = 0;
  size_t jobs = 0;
  {
    // Teardown order matters: the pool's destructor flushes through the
    // async front-end, so the AsyncDisk must outlive the pool.
    AsyncDisk async(db->disk.get());
    BufferManager pool(&async,
                       BufferOptions{.num_frames = 4096,
                                     .retry = options.retry,
                                     .num_shards = kThreads});
    service::ServiceOptions service_options;
    service_options.num_workers = 4;
    service_options.async_disk = &async;
    service::QueryService service(&pool, db->directory.get(),
                                  service_options);

    std::vector<std::future<service::QueryResult>> futures;
    const size_t per_job = db->roots.size() / kThreads;
    for (size_t j = 0; j < kThreads; ++j) {
      service::QueryJob job;
      job.client = "stress" + std::to_string(j);
      job.tmpl = &db->tmpl;
      job.roots.assign(db->roots.begin() + j * per_job,
                       j + 1 == kThreads
                           ? db->roots.end()
                           : db->roots.begin() + (j + 1) * per_job);
      job.assembly.window_size = 25;
      job.assembly.scheduler = SchedulerKind::kElevator;
      job.assembly.error_policy = ErrorPolicy::kSkipObject;
      futures.push_back(service.Submit(std::move(job)));
    }
    jobs = futures.size();
    service.Drain();

    size_t roots_assigned = 0;
    for (size_t j = 0; j < futures.size(); ++j) {
      service::QueryResult result = futures[j].get();
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      const AssemblyStats& a = result.assembly;
      // The degraded-mode conservation law: every admitted complex object
      // is emitted, predicate-aborted, or dropped by a read error.
      EXPECT_EQ(a.complex_admitted,
                a.complex_emitted + a.complex_aborted + a.objects_dropped)
          << "client " << result.client;
      EXPECT_EQ(a.complex_aborted, 0u);  // no predicates in these jobs
      EXPECT_EQ(result.rows, a.complex_emitted);
      total_rows += result.rows;
      total_dropped += a.objects_dropped;
      roots_assigned += a.complex_admitted;
    }
    EXPECT_EQ(roots_assigned, db->roots.size());
    EXPECT_EQ(total_rows + total_dropped, db->roots.size());
    EXPECT_EQ(pool.pinned_frames(), 0u);

    // Aggregate registry agrees with the per-job results.
    obs::JsonValue snapshot = service.registry().ToJson();
    const obs::JsonValue* counters = snapshot.Find("counters");
    ASSERT_NE(counters, nullptr);
    const obs::JsonValue* completed = counters->Find("service.jobs_completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(completed->AsInt(), static_cast<int64_t>(jobs));
    const obs::JsonValue* rows = counters->Find("service.rows");
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(rows->AsInt(), static_cast<int64_t>(total_rows));
    const obs::JsonValue* dropped = counters->Find("service.objects_dropped");
    if (dropped != nullptr) {
      EXPECT_EQ(dropped->AsInt(), static_cast<int64_t>(total_dropped));
    } else {
      EXPECT_EQ(total_dropped, 0u);
    }
    async.Drain();
  }
}

}  // namespace
}  // namespace cobra
