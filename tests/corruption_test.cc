// Fault-model coverage: page checksums, the buffer manager's retry policy,
// frame-leak-free error paths, the object/store corruption branches, and
// deterministic degraded-mode assembly (ErrorPolicy) without randomness.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "assembly/assembly_operator.h"
#include "buffer/buffer_manager.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/checksum.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "workload/acob.h"
#include "workload/genealogy.h"

namespace cobra {
namespace {

// ---------------------------------------------------------------- checksum

std::vector<std::byte> PatternPage(size_t size) {
  std::vector<std::byte> page(size);
  for (size_t i = 0; i < size; ++i) {
    page[i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
  }
  return page;
}

TEST(ChecksumTest, StampAndVerifyRoundTrip) {
  std::vector<std::byte> page = PatternPage(1024);
  StampPageChecksum(page.data(), page.size());
  EXPECT_TRUE(VerifyPageChecksum(page.data(), page.size(), 7).ok());
}

TEST(ChecksumTest, UnstampedPageSkipsVerification) {
  // Stored checksum 0 means "never written back through the buffer"; such
  // pages (fresh test fixtures, raw writes) must stay readable.
  std::vector<std::byte> page = PatternPage(1024);
  page[0] = page[1] = page[2] = page[3] = std::byte{0};
  EXPECT_TRUE(VerifyPageChecksum(page.data(), page.size(), 7).ok());
}

TEST(ChecksumTest, DetectsBitFlip) {
  std::vector<std::byte> page = PatternPage(1024);
  StampPageChecksum(page.data(), page.size());
  for (size_t offset : {size_t{4}, size_t{100}, size_t{1023}}) {
    std::vector<std::byte> copy = page;
    copy[offset] ^= std::byte{0x10};
    Status status = VerifyPageChecksum(copy.data(), copy.size(), 42);
    EXPECT_TRUE(status.IsCorruption()) << "offset " << offset;
  }
}

TEST(ChecksumTest, DetectsTornPage) {
  std::vector<std::byte> page = PatternPage(1024);
  StampPageChecksum(page.data(), page.size());
  std::fill(page.begin() + 512, page.end(), std::byte{0});
  EXPECT_TRUE(VerifyPageChecksum(page.data(), page.size(), 1).IsCorruption());
}

// ------------------------------------------------------ fault-injecting disk

TEST(FaultInjectingDiskTest, DisarmedBehavesLikeBase) {
  FaultInjectingDisk disk(FaultProfile::Mixed(1));
  std::vector<std::byte> in(disk.page_size(), std::byte{0x5A});
  ASSERT_TRUE(disk.WritePage(3, in.data()).ok());
  std::vector<std::byte> out(disk.page_size());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(disk.ReadPage(3, out.data()).ok());
    ASSERT_EQ(out, in);
  }
  EXPECT_EQ(disk.fault_stats().total(), 0u);
}

TEST(FaultInjectingDiskTest, TransientRateOneFailsEveryAttempt) {
  FaultProfile profile;
  profile.seed = 9;
  profile.transient_read_fail = 1.0;
  FaultInjectingDisk disk(profile);
  std::vector<std::byte> buf(disk.page_size(), std::byte{0});
  ASSERT_TRUE(disk.WritePage(0, buf.data()).ok());
  disk.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(disk.ReadPage(0, buf.data()).IsUnavailable());
  }
  EXPECT_EQ(disk.fault_stats().transient_failures, 5u);
}

TEST(FaultInjectingDiskTest, PermanentRateOneNeverRecovers) {
  FaultProfile profile;
  profile.seed = 9;
  profile.permanent_page_fail = 1.0;
  FaultInjectingDisk disk(profile);
  std::vector<std::byte> buf(disk.page_size(), std::byte{0});
  ASSERT_TRUE(disk.WritePage(0, buf.data()).ok());
  disk.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(disk.ReadPage(0, buf.data()).IsCorruption());
  }
  EXPECT_EQ(disk.fault_stats().permanent_failures, 5u);
}

TEST(FaultInjectingDiskTest, ScheduleIsDeterministicAndReplayable) {
  auto run = [](FaultInjectingDisk* disk) {
    std::vector<int> codes;
    std::vector<std::byte> buf(disk->page_size());
    for (PageId page = 0; page < 32; ++page) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        Status status = disk->ReadPage(page, buf.data());
        codes.push_back(static_cast<int>(status.code()));
        codes.push_back(
            static_cast<int>(buf[disk->page_size() / 2 + 13]));
      }
    }
    return codes;
  };

  FaultProfile profile = FaultProfile::Mixed(1234);
  FaultInjectingDisk a(profile);
  FaultInjectingDisk b(profile);
  std::vector<std::byte> page = PatternPage(a.page_size());
  StampPageChecksum(page.data(), page.size());
  for (PageId id = 0; id < 32; ++id) {
    ASSERT_TRUE(a.WritePage(id, page.data()).ok());
    ASSERT_TRUE(b.WritePage(id, page.data()).ok());
  }
  a.set_enabled(true);
  b.set_enabled(true);

  std::vector<int> first = run(&a);
  EXPECT_EQ(first, run(&b));  // same seed, same schedule
  EXPECT_GT(a.fault_stats().total(), 0u) << "profile injected nothing";

  // ResetFaultState clears per-page attempt numbers: the schedule replays.
  a.ResetFaultState();
  EXPECT_EQ(first, run(&a));
}

// ------------------------------------------------------- buffer retry path

// Builds `n` checksummed pages 0..n-1 through a throwaway buffer pool so
// fetches verify cleanly.
void WriteStampedPages(SimulatedDisk* disk, size_t n) {
  BufferManager loader(disk, BufferOptions{.num_frames = 8});
  for (PageId id = 0; id < n; ++id) {
    auto guard = loader.CreatePage(id);
    ASSERT_TRUE(guard.ok());
    guard->data()[100] = static_cast<std::byte>(id + 1);
  }
  ASSERT_TRUE(loader.FlushAll().ok());
}

TEST(BufferRetryTest, ExhaustedRetriesReturnUnavailable) {
  FaultProfile profile;
  profile.seed = 5;
  profile.transient_read_fail = 1.0;
  FaultInjectingDisk disk(profile);
  WriteStampedPages(&disk, 1);
  disk.set_enabled(true);

  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  auto guard = buffer.FetchPage(0);
  ASSERT_FALSE(guard.ok());
  EXPECT_TRUE(guard.status().IsUnavailable());
  EXPECT_EQ(buffer.stats().retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(buffer.stats().retries_exhausted, 1u);
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(BufferRetryTest, BackoffChargedAsReadSeekCost) {
  FaultProfile profile;
  profile.seed = 5;
  profile.transient_read_fail = 1.0;
  FaultInjectingDisk disk(profile);
  WriteStampedPages(&disk, 1);
  disk.ParkHead(0);
  disk.ResetStats();
  disk.set_enabled(true);

  BufferOptions options{.num_frames = 4};
  options.retry.max_read_attempts = 3;
  options.retry.backoff_seek_pages = 16;
  BufferManager buffer(&disk, options);
  ASSERT_FALSE(buffer.FetchPage(0).ok());
  // Page 0 with the head parked at 0: the only read seek cost is the
  // deterministic linear backoff, 1*16 + 2*16.
  EXPECT_EQ(disk.stats().reads, 3u);
  EXPECT_EQ(disk.stats().read_seek_pages, 48u);
}

TEST(BufferRetryTest, TransientFaultsRecoverWithinBudget) {
  FaultProfile profile;
  profile.seed = 77;
  profile.transient_read_fail = 0.4;
  FaultInjectingDisk disk(profile);
  WriteStampedPages(&disk, 16);
  disk.set_enabled(true);

  BufferOptions options{.num_frames = 16};
  options.retry.max_read_attempts = 10;
  BufferManager buffer(&disk, options);
  for (PageId id = 0; id < 16; ++id) {
    auto guard = buffer.FetchPage(id);
    ASSERT_TRUE(guard.ok()) << "page " << id << ": "
                            << guard.status().ToString();
    EXPECT_EQ(guard->data()[100], static_cast<std::byte>(id + 1));
  }
  EXPECT_GT(buffer.stats().retries, 0u);  // at least one first attempt failed
  EXPECT_EQ(buffer.stats().retries_exhausted, 0u);
}

TEST(BufferChecksumTest, CorruptedPageFailsFetchPermanently) {
  SimulatedDisk disk;
  WriteStampedPages(&disk, 2);

  // Flip one payload byte of page 0 behind the buffer manager's back.
  std::vector<std::byte> raw(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(0, raw.data()).ok());
  raw[100] ^= std::byte{0x01};
  ASSERT_TRUE(disk.WritePage(0, raw.data()).ok());

  BufferManager buffer(&disk, BufferOptions{.num_frames = 1});
  auto bad = buffer.FetchPage(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption());
  EXPECT_EQ(buffer.stats().checksum_failures, 1u);
  EXPECT_EQ(buffer.pinned_frames(), 0u);

  // The single frame was returned to the pool: page 1 still fetches.
  auto good = buffer.FetchPage(1);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->data()[100], std::byte{2});
}

TEST(BufferChecksumTest, VerificationAddsNoReads) {
  SimulatedDisk disk;
  WriteStampedPages(&disk, 4);
  disk.ResetStats();
  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(buffer.FetchPage(id).ok());
  }
  EXPECT_EQ(disk.stats().reads, 4u);  // exactly one read per fault
  EXPECT_EQ(buffer.stats().checksum_failures, 0u);
}

TEST(BufferChecksumTest, InjectedBitFlipsNeverLeaveAPagePinned) {
  // Regression: a fetch that obtains a frame and then fails checksum
  // verification must return the frame *and* the pin — under
  // ErrorPolicy::kSkipObject the query keeps running, so a leaked pin per
  // corrupt read would strangle the pool long before the query ends.
  FaultProfile profile;
  profile.seed = 3;
  profile.bit_flip = 1.0;  // every read comes back corrupted
  FaultInjectingDisk disk(profile);
  WriteStampedPages(&disk, 8);
  disk.set_enabled(true);

  BufferManager buffer(&disk, BufferOptions{.num_frames = 4});
  for (int round = 0; round < 3; ++round) {
    for (PageId id = 0; id < 8; ++id) {
      auto guard = buffer.FetchPage(id);
      ASSERT_FALSE(guard.ok());
      EXPECT_TRUE(guard.status().IsCorruption());
      EXPECT_EQ(buffer.pinned_frames(), 0u)
          << "round " << round << " page " << id;
    }
  }
  EXPECT_EQ(buffer.stats().checksum_failures, 24u);

  // Disarm: the pool is fully usable, no frame was lost.
  disk.set_enabled(false);
  for (PageId id = 0; id < 8; ++id) {
    auto guard = buffer.FetchPage(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[100], static_cast<std::byte>(id + 1));
  }
}

TEST(BufferFetchTest, NoFrameLeakOnNotFound) {
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 1});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(buffer.FetchPage(99).status().IsNotFound());
  }
  EXPECT_EQ(buffer.pinned_frames(), 0u);
  EXPECT_TRUE(buffer.CreatePage(1).ok());  // the one frame is still usable
}

// ----------------------------------------------- object corruption branches

TEST(ObjectCorruptionTest, TruncatedRecord) {
  auto empty = ObjectData::Deserialize({});
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsCorruption());

  ObjectData obj;
  obj.oid = 1;
  obj.type_id = 2;
  obj.fields = {10, 20, 30, 40};
  obj.refs = {5, 6};
  std::vector<std::byte> bytes = obj.Serialize();
  // Cut inside the header: the OID field cannot even be read.
  auto truncated =
      ObjectData::Deserialize(std::span<const std::byte>(bytes.data(), 5));
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.status().IsCorruption());
}

TEST(ObjectCorruptionTest, SizeMismatch) {
  ObjectData obj;
  obj.oid = 1;
  obj.type_id = 2;
  obj.fields = {10, 20, 30, 40};
  obj.refs = {5, 6};
  std::vector<std::byte> bytes = obj.Serialize();
  // Header intact but the body is short: declared counts disagree with the
  // record length.
  auto short_body = ObjectData::Deserialize(
      std::span<const std::byte>(bytes.data(), bytes.size() - 4));
  ASSERT_FALSE(short_body.ok());
  EXPECT_TRUE(short_body.status().IsCorruption());

  bytes.push_back(std::byte{0});  // trailing garbage
  auto long_body = ObjectData::Deserialize(bytes);
  ASSERT_FALSE(long_body.ok());
  EXPECT_TRUE(long_body.status().IsCorruption());
}

TEST(ObjectStoreCorruptionTest, DirectoryPointsAtWrongOid) {
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 64});
  HashDirectory directory;
  ObjectStore store(&buffer, &directory);
  HeapFile file(&buffer, 0, 8);

  ObjectData obj;
  obj.oid = store.AllocateOid();
  obj.type_id = 1;
  obj.fields = {1, 2, 3, 4};
  obj.refs = {};
  auto stored = store.Insert(obj, &file);
  ASSERT_TRUE(stored.ok());

  // Misdirect a fresh OID at the stored record.
  auto location = directory.Lookup(*stored);
  ASSERT_TRUE(location.ok());
  Oid bogus = store.AllocateOid();
  ASSERT_TRUE(directory.Put(bogus, *location).ok());

  auto got = store.Get(bogus);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
  EXPECT_TRUE(store.Get(*stored).ok());  // the real OID still resolves
}

// -------------------------------------------- degraded-mode assembly (det.)

// Runs the lives-close-to-father plan, returning matched person OIDs
// through `matches` and the operator stats through `stats`.
Status RunPlan(GenealogyDatabase* db, const AssemblyOptions& options,
               std::vector<Oid>* matches, AssemblyStats* stats) {
  matches->clear();
  COBRA_RETURN_IF_ERROR(db->ColdRestart());
  AssemblyOperator* assembly = nullptr;
  std::unique_ptr<exec::Iterator> plan =
      MakeLivesCloseToFatherPlan(db, options, &assembly);
  COBRA_RETURN_IF_ERROR(plan->Open());
  exec::RowBatch batch;
  for (;;) {
    Result<size_t> n = plan->NextBatch(&batch);
    if (!n.ok()) {
      (void)plan->Close();
      return n.status();
    }
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      matches->push_back(batch[i][0].AsObject()->oid);
    }
  }
  *stats = assembly->stats();
  return plan->Close();
}

class DegradedModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenealogyOptions options;
    options.num_people = 200;
    options.seed = 11;
    auto built = BuildGenealogyDatabase(options);
    ASSERT_TRUE(built.ok());
    db_ = std::move(built).value();
  }

  // Unregisters the residence of person `index`, creating a dangling OID.
  Oid BreakResidenceOf(size_t index) {
    auto person = db_->store->Get(db_->persons[index]);
    EXPECT_TRUE(person.ok());
    Oid residence = person->refs[kPersonResidenceSlot];
    EXPECT_TRUE(db_->directory->Remove(residence).ok());
    return residence;
  }

  std::unique_ptr<GenealogyDatabase> db_;
};

TEST_F(DegradedModeTest, FailQuerySurfacesFirstError) {
  std::vector<Oid> baseline;
  AssemblyStats stats;
  AssemblyOptions options;
  options.window_size = 8;
  ASSERT_TRUE(RunPlan(db_.get(), options, &baseline, &stats).ok());
  EXPECT_EQ(stats.objects_dropped, 0u);

  BreakResidenceOf(0);
  std::vector<Oid> matches;
  Status status = RunPlan(db_.get(), options, &matches, &stats);
  ASSERT_FALSE(status.ok());  // default policy: first error kills the query
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(DegradedModeTest, SkipObjectDropsOnlyAffectedObjects) {
  AssemblyOptions options;
  options.window_size = 8;
  std::vector<Oid> baseline;
  AssemblyStats stats;
  ASSERT_TRUE(RunPlan(db_.get(), options, &baseline, &stats).ok());

  Oid broken = BreakResidenceOf(0);
  options.error_policy = ErrorPolicy::kSkipObject;
  std::vector<Oid> degraded;
  ASSERT_TRUE(RunPlan(db_.get(), options, &degraded, &stats).ok());

  // Residences are shared: everyone in the broken household drops, nobody
  // else does.  The query completed over the survivors.
  EXPECT_GT(stats.objects_dropped, 0u);
  EXPECT_EQ(stats.complex_admitted, db_->persons.size());
  EXPECT_EQ(stats.complex_admitted, stats.complex_emitted +
                                        stats.complex_aborted +
                                        stats.objects_dropped);
  std::set<Oid> baseline_set(baseline.begin(), baseline.end());
  for (Oid oid : degraded) {
    EXPECT_TRUE(baseline_set.contains(oid)) << "non-baseline survivor " << oid;
  }
  EXPECT_LT(degraded.size(), baseline.size() + 1);  // nothing appeared
  (void)broken;
}

TEST_F(DegradedModeTest, DropSetIsStableAcrossRuns) {
  BreakResidenceOf(3);
  AssemblyOptions options;
  options.window_size = 8;
  options.error_policy = ErrorPolicy::kSkipObject;
  std::vector<Oid> first;
  std::vector<Oid> second;
  AssemblyStats stats_first;
  AssemblyStats stats_second;
  ASSERT_TRUE(RunPlan(db_.get(), options, &first, &stats_first).ok());
  ASSERT_TRUE(RunPlan(db_.get(), options, &second, &stats_second).ok());
  EXPECT_EQ(first, second);
  EXPECT_EQ(stats_first.objects_dropped, stats_second.objects_dropped);
}

TEST(DegradedAssemblyPinTest, SkipObjectUnderBitFlipsLeavesPoolUnpinned) {
  // End-to-end form of the pin-leak regression: an assembly query that
  // keeps going past corrupt reads (kSkipObject) must end with every buffer
  // frame unpinned, however many fetches failed mid-object.
  AcobOptions options;
  options.num_complex_objects = 60;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  options.faults.seed = 99;
  options.faults.bit_flip = 0.10;  // roughly every tenth read corrupted
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  std::vector<exec::Row> rows;
  for (Oid root : db->roots) rows.push_back(exec::Row{exec::Value::Ref(root)});
  AssemblyOptions assembly;
  assembly.window_size = 10;
  assembly.error_policy = ErrorPolicy::kSkipObject;
  AssemblyOperator op(std::make_unique<exec::VectorScan>(std::move(rows)),
                      &db->tmpl, db->store.get(), assembly);
  ASSERT_TRUE(op.Open().ok());
  exec::RowBatch batch;
  uint64_t emitted = 0;
  for (;;) {
    auto n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    emitted += *n;
  }
  ASSERT_TRUE(op.Close().ok());

  const AssemblyStats& stats = op.stats();
  EXPECT_GT(stats.objects_dropped, 0u) << "fault profile injected nothing";
  EXPECT_EQ(stats.complex_admitted, db->roots.size());
  EXPECT_EQ(stats.complex_admitted, stats.complex_emitted +
                                        stats.complex_aborted +
                                        stats.objects_dropped);
  EXPECT_EQ(emitted, stats.complex_emitted);
  EXPECT_EQ(db->buffer->pinned_frames(), 0u);
  EXPECT_GT(db->buffer->stats().checksum_failures, 0u);
}

// ------------------------------------------- vectored reads under faults

// SimulatedDisk with a deterministic per-page fault hook: `fault_page`
// rejects its next `remaining_faults` run transfers with the given status.
// Tests the ReadRun/FixRun splitting machinery without the probabilistic
// injector.
class OnePageFaultDisk : public SimulatedDisk {
 public:
  PageId fault_page = kInvalidPageId;
  int remaining_faults = 0;
  Status fault = Status::Unavailable("injected");

 protected:
  Status InjectRunPageFault(PageId id, std::byte*, uint64_t*) override {
    if (id == fault_page && remaining_faults != 0) {
      if (remaining_faults > 0) --remaining_faults;
      return fault;
    }
    return Status::OK();
  }
};

TEST(VectoredFaultTest, MidRunTransientFaultRetriesOnlyTheTail) {
  OnePageFaultDisk disk;
  WriteStampedPages(&disk, 6);
  disk.fault_page = 3;
  disk.remaining_faults = 1;
  disk.ParkHead(0);
  disk.ResetStats();

  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  std::vector<Result<PageGuard>> out;
  buffer.FixRun(0, 6, /*ascending=*/true, &out);
  ASSERT_EQ(out.size(), 6u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << "page " << i << ": "
                             << out[i].status().ToString();
    EXPECT_EQ(out[i]->data()[100], static_cast<std::byte>(i + 1));
  }
  // The fault split one coalesced transfer in two: pages 0-2 landed before
  // the fault, the retry re-read only the tail 3-5 — never the good prefix.
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(disk.stats().pages_read, 7u);  // 0,1,2,3(faulted) + 3,4,5
  EXPECT_EQ(buffer.stats().retries, 1u);
  EXPECT_EQ(buffer.stats().retries_exhausted, 0u);
  // Travel: 3 sequential transfers + re-entry at page 3 (0) + 2 transfers,
  // plus one 16-page retry backoff for the failed attempt.
  EXPECT_EQ(disk.stats().read_seek_pages, 3u + 2u + 16u);
  out.clear();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(VectoredFaultTest, MidRunPermanentFaultPoisonsOnlyItsPage) {
  OnePageFaultDisk disk;
  WriteStampedPages(&disk, 5);
  disk.fault_page = 2;
  disk.remaining_faults = -1;  // never recovers
  disk.fault = Status::Corruption("bad sector");
  disk.ParkHead(0);
  disk.ResetStats();

  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  std::vector<Result<PageGuard>> out;
  buffer.FixRun(0, 5, /*ascending=*/true, &out);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_TRUE(out[i].ok()) << "page " << i;
  }
  EXPECT_TRUE(out[2].status().IsCorruption());
  // Permanent faults are never retried: the run resumed past the bad page.
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(buffer.stats().retries, 0u);
  out.clear();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
  // The poisoned page is not cached: a later fetch re-reads (and fails
  // again while the fault persists).
  EXPECT_FALSE(buffer.IsResident(2));
}

TEST(VectoredFaultTest, ChecksumVerifiesPerPageWithinARun) {
  SimulatedDisk disk;
  WriteStampedPages(&disk, 3);
  // Corrupt page 1's payload behind the checksum's back.
  std::vector<std::byte> raw(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(1, raw.data()).ok());
  raw[200] ^= std::byte{0xFF};
  ASSERT_TRUE(disk.WritePage(1, raw.data()).ok());
  disk.ResetStats();

  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  std::vector<Result<PageGuard>> out;
  buffer.FixRun(0, 3, /*ascending=*/true, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_TRUE(out[1].status().IsCorruption());
  EXPECT_TRUE(out[2].ok());
  // One coalesced transfer moved all three pages; only page 1 was rejected.
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
  EXPECT_EQ(buffer.stats().checksum_failures, 1u);
  out.clear();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(VectoredFaultTest, FixRunMixesHitsAndMissesWithoutRereads) {
  SimulatedDisk disk;
  WriteStampedPages(&disk, 6);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  // Warm pages 1 and 4; the run must pin them as hits and read the rest in
  // consecutive-miss groups.
  { auto g = buffer.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = buffer.FetchPage(4); ASSERT_TRUE(g.ok()); }
  disk.ResetStats();
  std::vector<Result<PageGuard>> out;
  buffer.FixRun(0, 6, /*ascending=*/true, &out);
  ASSERT_EQ(out.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(out[i].ok()) << "page " << i;
    EXPECT_EQ(out[i]->data()[100], static_cast<std::byte>(i + 1));
  }
  // Miss groups {0}, {2,3}, {5}: three transfers, four pages, zero rereads
  // of the resident pages.
  EXPECT_EQ(disk.stats().reads, 3u);
  EXPECT_EQ(disk.stats().pages_read, 4u);
  EXPECT_EQ(buffer.stats().hits, 2u);
  out.clear();
  EXPECT_EQ(buffer.pinned_frames(), 0u);
}

TEST(DegradedAssemblyPinTest, VectoredSkipObjectUnderBitFlipsStaysUnpinned) {
  // The io_batch=8 twin of SkipObjectUnderBitFlipsLeavesPoolUnpinned:
  // corrupt reads arriving through coalesced FixRun transfers must degrade
  // exactly as gracefully — no pinned frame survives the query, and the
  // admitted = emitted + aborted + dropped invariant holds.
  AcobOptions options;
  options.num_complex_objects = 60;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  options.faults.seed = 99;
  options.faults.bit_flip = 0.10;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  std::vector<exec::Row> rows;
  for (Oid root : db->roots) rows.push_back(exec::Row{exec::Value::Ref(root)});
  AssemblyOptions assembly;
  assembly.window_size = 10;
  assembly.scheduler = SchedulerKind::kElevator;
  assembly.error_policy = ErrorPolicy::kSkipObject;
  assembly.io_batch_pages = 8;
  AssemblyOperator op(std::make_unique<exec::VectorScan>(std::move(rows)),
                      &db->tmpl, db->store.get(), assembly);
  ASSERT_TRUE(op.Open().ok());
  exec::RowBatch batch;
  uint64_t emitted = 0;
  for (;;) {
    auto n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    emitted += *n;
  }
  ASSERT_TRUE(op.Close().ok());

  const AssemblyStats& stats = op.stats();
  EXPECT_GT(stats.objects_dropped, 0u) << "fault profile injected nothing";
  EXPECT_EQ(stats.complex_admitted, db->roots.size());
  EXPECT_EQ(stats.complex_admitted, stats.complex_emitted +
                                        stats.complex_aborted +
                                        stats.objects_dropped);
  EXPECT_EQ(emitted, stats.complex_emitted);
  EXPECT_EQ(db->buffer->pinned_frames(), 0u);
  EXPECT_GT(db->buffer->stats().checksum_failures, 0u);
}

}  // namespace
}  // namespace cobra
