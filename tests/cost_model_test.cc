#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/cost_model.h"
#include "exec/scan.h"
#include "workload/acob.h"

namespace cobra {
namespace {

DatabaseProfile AcobProfile(const AcobDatabase& db,
                            PlacementClass placement) {
  DatabaseProfile profile;
  profile.num_complex_objects = db.options.num_complex_objects;
  profile.components_per_complex =
      AcobComponentsPerComplex(db.options.levels);
  profile.objects_per_page = db.options.objects_per_page;
  profile.data_pages = db.data_pages;
  profile.page_span = db.disk->page_span();
  profile.placement = placement;
  return profile;
}

TEST(WindowBufferBoundTest, MatchesPaperNumbers) {
  // §6.3.3: 7 pages at W=1; 6*49 + 7 = 301 at W=50 (c = 7 components).
  EXPECT_EQ(WindowBufferBound(7, 1), 7u);
  EXPECT_EQ(WindowBufferBound(7, 50), 301u);
  EXPECT_EQ(WindowBufferBound(7, 200), 1201u);
  EXPECT_EQ(WindowBufferBound(4, 2), 7u);
  EXPECT_EQ(WindowBufferBound(1, 10), 1u);
}

TEST(AdviseWindowSizeTest, InvertsTheBound) {
  DatabaseProfile profile;
  profile.components_per_complex = 7;
  profile.num_complex_objects = 100000;
  // 301 frames admit exactly W = 50.
  EXPECT_EQ(AdviseWindowSize(profile, 301), 50u);
  EXPECT_EQ(AdviseWindowSize(profile, 300), 49u);
  EXPECT_EQ(AdviseWindowSize(profile, 7), 1u);
  EXPECT_EQ(AdviseWindowSize(profile, 3), 1u);
  // Advice never exceeds the number of complex objects.
  profile.num_complex_objects = 10;
  EXPECT_EQ(AdviseWindowSize(profile, 100000), 10u);
}

TEST(AdviseWindowSizeTest, AdvisedWindowRespectsBound) {
  DatabaseProfile profile;
  profile.components_per_complex = 7;
  profile.num_complex_objects = 100000;
  for (size_t frames : {size_t{10}, size_t{100}, size_t{301}, size_t{5000}}) {
    size_t window = AdviseWindowSize(profile, frames);
    EXPECT_GE(window, 1u);
    if (window > 1) {
      EXPECT_LE(WindowBufferBound(7, window), frames);
    }
    // The next window up would not fit (or is capped).
    EXPECT_GT(WindowBufferBound(7, window + 1), frames);
  }
}

TEST(CostModelTest, ElevatorEstimatedBelowObjectAtATime) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  profile.placement = PlacementClass::kRandom;
  auto df = EstimateAssemblyCost(profile, SchedulerKind::kDepthFirst, 50);
  auto el = EstimateAssemblyCost(profile, SchedulerKind::kElevator, 50);
  EXPECT_LT(el.expected_avg_seek, df.expected_avg_seek);
  EXPECT_DOUBLE_EQ(df.expected_object_fetches, 7000.0);
  EXPECT_EQ(df.window_buffer_pages, 301u);
}

TEST(CostModelTest, WiderWindowNeverRaisesElevatorEstimate) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  profile.placement = PlacementClass::kRandom;
  double previous = 1e18;
  for (size_t window : {size_t{1}, size_t{10}, size_t{50}, size_t{200}}) {
    auto estimate =
        EstimateAssemblyCost(profile, SchedulerKind::kElevator, window);
    EXPECT_LE(estimate.expected_avg_seek, previous);
    previous = estimate.expected_avg_seek;
  }
}

TEST(CostModelTest, SelectivityShrinksFetches) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  profile.predicate_selectivity = 0.2;
  auto estimate = EstimateAssemblyCost(profile, SchedulerKind::kElevator, 50);
  // 0.2 * 7 + 0.8 * 2 = 3.0 components per complex object.
  EXPECT_DOUBLE_EQ(estimate.expected_object_fetches, 3000.0);
}

TEST(CostModelTest, ContiguousPlacementIsSequential) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  profile.placement = PlacementClass::kContiguous;
  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kElevator}) {
    auto estimate = EstimateAssemblyCost(profile, kind, 1);
    EXPECT_DOUBLE_EQ(estimate.expected_avg_seek, 1.0);
  }
}

TEST(ChooseAssemblyOptionsTest, PicksElevatorAtAdvisedWindow) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  profile.placement = PlacementClass::kRandom;
  AssemblyChoice choice = ChooseAssemblyOptions(profile, /*frames=*/301);
  EXPECT_EQ(choice.scheduler, SchedulerKind::kElevator);
  EXPECT_EQ(choice.window_size, 50u);
  EXPECT_LE(choice.estimate.window_buffer_pages, 301u);
  // The choice must not be worse than any scheduler at the same window.
  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kBreadthFirst,
                    SchedulerKind::kElevator}) {
    auto other = EstimateAssemblyCost(profile, kind, choice.window_size);
    EXPECT_LE(choice.estimate.expected_total_seek,
              other.expected_total_seek);
  }
}

TEST(ChooseAssemblyOptionsTest, TinyBufferForcesWindowOne) {
  DatabaseProfile profile;
  profile.num_complex_objects = 1000;
  profile.components_per_complex = 7;
  profile.data_pages = 778;
  profile.page_span = 780;
  AssemblyChoice choice = ChooseAssemblyOptions(profile, /*frames=*/4);
  EXPECT_EQ(choice.window_size, 1u);
}

// Validation against measurement: the estimate must land within a small
// factor of the measured value and order the alternatives correctly.
TEST(CostModelTest, EstimateTracksMeasurementOnUnclusteredData) {
  AcobOptions options;
  options.num_complex_objects = 400;
  options.clustering = Clustering::kUnclustered;
  options.seed = 3;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  DatabaseProfile profile = AcobProfile(**db, PlacementClass::kRandom);

  auto run = [&](SchedulerKind kind, size_t window) -> double {
    EXPECT_TRUE((*db)->ColdRestart().ok());
    std::vector<exec::Row> roots;
    for (Oid oid : (*db)->roots) {
      roots.push_back(exec::Row{exec::Value::Ref(oid)});
    }
    AssemblyOperator op(
        std::make_unique<exec::VectorScan>(std::move(roots)), &(*db)->tmpl,
        (*db)->store.get(), AssemblyOptions{.window_size = window,
                                            .scheduler = kind});
    EXPECT_TRUE(op.Open().ok());
    exec::RowBatch batch;
    for (;;) {
      auto n = op.NextBatch(&batch);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) break;
    }
    EXPECT_TRUE(op.Close().ok());
    return (*db)->disk->stats().AvgSeekPerRead();
  };

  struct Case {
    SchedulerKind kind;
    size_t window;
  };
  for (const Case& c : {Case{SchedulerKind::kDepthFirst, 1},
                        Case{SchedulerKind::kElevator, 1},
                        Case{SchedulerKind::kElevator, 50}}) {
    double measured = run(c.kind, c.window);
    double estimated =
        EstimateAssemblyCost(profile, c.kind, c.window).expected_avg_seek;
    EXPECT_GT(estimated, measured / 4.0)
        << SchedulerKindName(c.kind) << " W=" << c.window;
    EXPECT_LT(estimated, measured * 4.0)
        << SchedulerKindName(c.kind) << " W=" << c.window;
  }
}

}  // namespace
}  // namespace cobra
