// Deterministic crash-point matrix (ctest label `crash`).
//
// A fixed write workload — inserts, updates, removes, an explicit abort, a
// checkpoint, a trailing uncommitted transaction, and a final flush — runs
// against a FaultInjectingDisk with a power cut scheduled after N
// successful page writes.  The sweep enumerates N over EVERY write boundary
// of the workload (counted from an uncrashed run), in both crash modes
// (write dropped / write half-torn), and after each cut restarts the stack
// and asserts the ARIES invariants:
//
//   * recovery succeeds;
//   * every surviving data page is checksum-clean;
//   * acknowledged commits are durable in full;
//   * unacknowledged transactions are all-or-nothing, and the set of
//     surviving transactions is a prefix of commit order (the durable log
//     is a prefix of the appended log);
//   * aborted and never-committed transactions are invisible;
//   * running recovery twice leaves bit-identical pages.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/checksum.h"
#include "storage/faulty_disk.h"
#include "wal/wal.h"

namespace cobra {
namespace {

constexpr PageId kDataFirst = 0;
constexpr size_t kDataPages = 8;
constexpr PageId kLogFirst = 64;
constexpr size_t kLogPages = 128;

wal::WalOptions LogOptions() {
  wal::WalOptions options;
  options.log_first_page = kLogFirst;
  options.log_max_pages = kLogPages;
  return options;
}

ObjectData MakeObject(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 1;
  obj.fields = {tag, tag + 1, tag + 2, tag + 3};
  obj.refs = {};
  return obj;
}

// Bulky objects spread the workload across several data pages, so the sweep
// exercises multi-page flushes (several logged images per checkpoint) rather
// than collapsing onto a single hot page.
ObjectData MakeBigObject(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 2;
  obj.fields.resize(56);
  for (int32_t i = 0; i < 56; ++i) obj.fields[i] = tag + i;
  obj.refs = {};
  return obj;
}

// Fixed OIDs so the expected states are written down, not computed.
constexpr Oid kA = 1, kB = 2, kC = 3, kD = 4, kE = 5;
constexpr Oid kFillerFirst = 10;
constexpr int kFillers = 6;

// Commit acknowledgements observed by the workload driver: an acked commit
// returned OK before the crash and MUST be durable.
struct Ack {
  bool t1 = false;
  bool t2 = false;
  bool t4 = false;
};

// Runs the workload until the scheduled crash kills it (or to completion),
// recording which commits were acknowledged.  The stack is torn down inside
// (destructor write-backs count as crash points too).  Returns the number
// of successful page writes the disk served since the crash was armed.
uint64_t RunWorkload(FaultInjectingDisk* disk, uint64_t crash_after,
                     CrashWriteMode mode, Ack* ack) {
  disk->ScheduleCrash(crash_after, mode);
  {
    wal::WalManager wal(disk, LogOptions());
    if (!wal.Recover().ok()) {
      return disk->writes_survived();
    }
    BufferManager buffer(disk, BufferOptions{.num_frames = 32});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);
    HashDirectory directory;
    ObjectStore store(&buffer, &directory);
    store.set_wal(&wal);

    // One committed transaction; `ops` returns false as soon as the crash
    // surfaces, after which the driver just walks the remaining steps (each
    // fails fast on the dead log).
    auto txn = [&](auto&& ops, bool* acked) {
      auto t = store.BeginTxn();
      if (!t.ok()) return;
      if (!ops(*t)) {
        (void)store.AbortTxn(*t);
        return;
      }
      if (store.CommitTxn(*t).ok() && acked != nullptr) {
        *acked = true;
      }
    };

    // t1: insert A, B and the bulky fillers (spanning several data pages).
    txn(
        [&](wal::TxnId t) {
          if (!store.InsertTxn(t, MakeObject(kA, 100), &file).ok() ||
              !store.InsertTxn(t, MakeObject(kB, 200), &file).ok()) {
            return false;
          }
          for (int i = 0; i < kFillers; ++i) {
            if (!store
                     .InsertTxn(t, MakeBigObject(kFillerFirst + i, 1000 + i),
                                &file)
                     .ok()) {
              return false;
            }
          }
          return true;
        },
        &ack->t1);
    // t2: insert C, update A.
    txn(
        [&](wal::TxnId t) {
          return store.InsertTxn(t, MakeObject(kC, 300), &file).ok() &&
                 store.UpdateTxn(t, MakeObject(kA, 101), &file).ok();
        },
        &ack->t2);
    // t3: insert D, then roll it back explicitly.
    {
      auto t = store.BeginTxn();
      if (t.ok()) {
        (void)store.InsertTxn(*t, MakeObject(kD, 400), &file);
        (void)store.AbortTxn(*t);
      }
    }
    // Checkpoint: flushes all committed pages and truncates the log.
    (void)wal.Checkpoint(&buffer);
    // t4: update B, remove C, rewrite one filler and drop another (dirties
    // pages on both sides of the checkpoint's truncation).
    txn(
        [&](wal::TxnId t) {
          return store.UpdateTxn(t, MakeObject(kB, 201), &file).ok() &&
                 store.RemoveTxn(t, kC, &file).ok() &&
                 store.UpdateTxn(t, MakeBigObject(kFillerFirst, 2000), &file)
                     .ok() &&
                 store.RemoveTxn(t, kFillerFirst + kFillers - 1, &file).ok();
        },
        &ack->t4);
    // t5: insert E and walk away — never committed, never aborted.
    {
      auto t = store.BeginTxn();
      if (t.ok()) {
        (void)store.InsertTxn(*t, MakeObject(kE, 500), &file);
      }
    }
    (void)buffer.FlushAll();
  }
  return disk->writes_survived();
}

using ObjectMap = std::map<Oid, ObjectData>;

// Expected object map after each commit-order prefix of {t1, t2, t4}.
std::vector<ObjectMap> CandidateStates() {
  std::vector<ObjectMap> states;
  ObjectMap s;  // nothing durable
  states.push_back(s);
  s[kA] = MakeObject(kA, 100);  // t1
  s[kB] = MakeObject(kB, 200);
  for (int i = 0; i < kFillers; ++i) {
    s[kFillerFirst + i] = MakeBigObject(kFillerFirst + i, 1000 + i);
  }
  states.push_back(s);
  s[kC] = MakeObject(kC, 300);  // t2
  s[kA] = MakeObject(kA, 101);
  states.push_back(s);
  s[kB] = MakeObject(kB, 201);  // t4
  s.erase(kC);
  s[kFillerFirst] = MakeBigObject(kFillerFirst, 2000);
  s.erase(kFillerFirst + kFillers - 1);
  states.push_back(s);
  return states;
}

// Restarts the stack on the crashed disk, recovers, and checks every
// invariant for this crash point.
void VerifyRecovery(FaultInjectingDisk* disk, const Ack& ack,
                    const std::string& label) {
  SCOPED_TRACE(label);
  disk->ClearCrash();

  auto snapshot_extent = [&] {
    std::vector<std::vector<std::byte>> pages;
    std::vector<std::byte> raw(disk->page_size());
    for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
      if (disk->Exists(id)) {
        EXPECT_TRUE(disk->ReadPage(id, raw.data()).ok());
        pages.push_back(raw);
      } else {
        pages.emplace_back();
      }
    }
    return pages;
  };

  ObjectMap actual;
  {
    wal::WalManager wal(disk, LogOptions());
    Status recovered = wal.Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.ToString();

    // Invariant: surviving data pages verify their checksums.
    std::vector<std::byte> raw(disk->page_size());
    for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
      if (!disk->Exists(id)) continue;
      ASSERT_TRUE(disk->ReadPage(id, raw.data()).ok());
      EXPECT_TRUE(VerifyPageChecksum(raw.data(), raw.size(), id).ok())
          << "torn page " << id << " survived recovery";
    }

    BufferManager buffer(disk, BufferOptions{.num_frames = 32});
    buffer.set_write_gate(&wal);
    auto file = HeapFile::Open(&buffer, kDataFirst, kDataPages);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto cursor = file->Scan();
    RecordId rid;
    std::vector<std::byte> record;
    for (;;) {
      auto more = cursor.Next(&rid, &record);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      auto obj = ObjectData::Deserialize(record);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      EXPECT_FALSE(actual.contains(obj->oid)) << "duplicate oid " << obj->oid;
      actual[obj->oid] = *obj;
    }
  }

  // Invariant: the durable state is exactly one commit-order prefix, no
  // further back than the acknowledged commits.
  std::vector<ObjectMap> candidates = CandidateStates();
  size_t min_state = ack.t4 ? 3 : ack.t2 ? 2 : ack.t1 ? 1 : 0;
  bool matched = false;
  for (size_t i = min_state; i < candidates.size(); ++i) {
    if (actual == candidates[i]) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << "recovered state matches no acknowledged commit prefix ("
      << actual.size() << " objects, min prefix " << min_state << ")";
  // The aborted (D) and never-committed (E) objects must never surface.
  EXPECT_FALSE(actual.contains(kD)) << "aborted insert became durable";
  EXPECT_FALSE(actual.contains(kE)) << "uncommitted insert became durable";

  // Invariant: recovery is idempotent — a crash during recovery reruns it,
  // and the second pass must leave bit-identical pages.
  auto first = snapshot_extent();
  {
    wal::WalManager wal(disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
  }
  EXPECT_EQ(first, snapshot_extent()) << "second recovery diverged";
}

void SweepCrashPoints(CrashWriteMode mode, const char* mode_name) {
  // Enumerate the write boundaries from an uncrashed run.
  uint64_t total_writes = 0;
  {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    total_writes = RunWorkload(&disk, ~uint64_t{0}, mode, &ack);
    ASSERT_TRUE(ack.t1 && ack.t2 && ack.t4);
    ASSERT_FALSE(disk.crash_triggered());
    Ack all = ack;
    VerifyRecovery(&disk, all, std::string(mode_name) + " uncrashed");
  }
  ASSERT_GT(total_writes, 10u) << "workload too small to be interesting";

  // Crash after every write boundary: n = 0 (the very first write dies)
  // through n = total_writes - 1 (the last write dies).  The group-commit
  // daemon's batching varies by a write or two with thread scheduling, so
  // a tail point enumerated from the uncrashed run may not exist as a
  // boundary in a given sweep run; such a run completed the whole workload
  // and is verified as uncrashed.  Nearly all points must still trigger.
  uint64_t unused_points = 0;
  for (uint64_t n = 0; n < total_writes; ++n) {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    RunWorkload(&disk, n, mode, &ack);
    if (!disk.crash_triggered()) ++unused_points;
    VerifyRecovery(&disk, ack,
                   std::string(mode_name) + " crash after " +
                       std::to_string(n) + " writes");
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_LE(unused_points, total_writes / 4)
      << "sweep barely crashed: write counts diverged wildly across runs";
}

TEST(CrashMatrix, DropWriteSweepRecoversAtEveryBoundary) {
  SweepCrashPoints(CrashWriteMode::kDropWrite, "drop");
}

TEST(CrashMatrix, TornWriteSweepRecoversAtEveryBoundary) {
  SweepCrashPoints(CrashWriteMode::kTornWrite, "torn");
}

}  // namespace
}  // namespace cobra
