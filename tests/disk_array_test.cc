// Disk-array model: striped placement, per-spindle seek accounting, log
// region pinning, per-spindle fault scoping, and — the load-bearing
// invariants — (a) the degenerate 1-spindle geometry is bit-identical to
// the plain single-arm SimulatedDisk, and (b) per-spindle statistics sum
// exactly to the global counters at every point.

#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "obs/query_context.h"
#include "stats/histogram.h"
#include "storage/async_disk.h"
#include "storage/disk_array.h"
#include "storage/faulty_disk.h"
#include "storage/placement.h"

namespace cobra {
namespace {

std::vector<std::byte> MakePage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

DiskGeometry Geometry(uint32_t spindles, uint32_t stripe_width = 1) {
  DiskGeometry g;
  g.spindles = spindles;
  g.stripe_width = stripe_width;
  return g;
}

// --- Placement math ----------------------------------------------------

TEST(PlacementTest, SingleSpindleIsIdentity) {
  PlacementPolicy policy(Geometry(1, 1));
  for (PageId page : {PageId{0}, PageId{7}, PageId{1000}, PageId{123456}}) {
    SpindleSlot slot = policy.Resolve(page);
    EXPECT_EQ(slot.spindle, 0u);
    EXPECT_EQ(slot.offset, page);
  }
}

TEST(PlacementTest, RoundRobinStripeWidthOne) {
  PlacementPolicy policy(Geometry(4, 1));
  // Pages 0,1,2,3 land on spindles 0,1,2,3 at offset 0; 4..7 at offset 1.
  for (PageId page = 0; page < 16; ++page) {
    SpindleSlot slot = policy.Resolve(page);
    EXPECT_EQ(slot.spindle, page % 4);
    EXPECT_EQ(slot.offset, page / 4);
  }
}

TEST(PlacementTest, RoundRobinWideStripeKeepsRunsTogether) {
  PlacementPolicy policy(Geometry(2, 8));
  // Pages 0..7 share spindle 0; 8..15 spindle 1; 16..23 spindle 0 again —
  // and within a stripe, offsets are consecutive (SCAN-equivalent order).
  for (PageId page = 0; page < 32; ++page) {
    SpindleSlot slot = policy.Resolve(page);
    EXPECT_EQ(slot.spindle, (page / 8) % 2) << "page " << page;
    if (page % 8 != 0) {
      SpindleSlot prev = policy.Resolve(page - 1);
      if (prev.spindle == slot.spindle) {
        EXPECT_EQ(slot.offset, prev.offset + 1) << "page " << page;
      }
    }
  }
}

TEST(PlacementTest, RoundRobinInverseRoundTrips) {
  for (uint32_t spindles : {1u, 2u, 3u, 4u, 8u}) {
    for (uint32_t width : {1u, 2u, 8u}) {
      PlacementPolicy policy(Geometry(spindles, width));
      for (PageId page = 0; page < 500; ++page) {
        SpindleSlot slot = policy.Resolve(page);
        EXPECT_LT(slot.spindle, spindles);
        EXPECT_EQ(policy.PageAt(slot.spindle, slot.offset), page)
            << "spindles=" << spindles << " width=" << width
            << " page=" << page;
      }
    }
  }
}

TEST(PlacementTest, ClusteredPartitionsContiguously) {
  DiskGeometry g;
  g.spindles = 4;
  g.placement = PlacementKind::kClustered;
  g.clustered_pages_per_spindle = 100;
  PlacementPolicy policy(g);
  EXPECT_EQ(policy.Resolve(0).spindle, 0u);
  EXPECT_EQ(policy.Resolve(99).spindle, 0u);
  EXPECT_EQ(policy.Resolve(100).spindle, 1u);
  EXPECT_EQ(policy.Resolve(399).spindle, 3u);
  // Overflow past the last partition stays on the last spindle.
  EXPECT_EQ(policy.Resolve(5000).spindle, 3u);
  for (PageId page = 0; page < 400; ++page) {
    SpindleSlot slot = policy.Resolve(page);
    EXPECT_EQ(policy.PageAt(slot.spindle, slot.offset), page);
  }
}

// Per-spindle page order must equal offset order: the elevator sorts by
// PageId, so a spindle's service order is a physical SCAN only if the
// mapping is monotone per spindle.
TEST(PlacementTest, PerSpindleOffsetOrderIsPageOrder) {
  for (uint32_t width : {1u, 4u}) {
    PlacementPolicy policy(Geometry(3, width));
    std::vector<PageId> last_offset(3, 0);
    std::vector<bool> seen(3, false);
    for (PageId page = 0; page < 600; ++page) {
      SpindleSlot slot = policy.Resolve(page);
      if (seen[slot.spindle]) {
        EXPECT_GT(slot.offset, last_offset[slot.spindle])
            << "width " << width << " page " << page;
      }
      last_offset[slot.spindle] = slot.offset;
      seen[slot.spindle] = true;
    }
  }
}

// --- Degenerate geometry bit-identity ----------------------------------

TEST(DiskArrayTest, SingleSpindleMatchesPlainDiskExactly) {
  SimulatedDisk plain;
  DiskArray array(Geometry(1, 1));
  auto page = MakePage(plain.page_size(), 0x5A);
  const PageId kPages[] = {0, 50, 10, 99, 3, 10};
  for (PageId id : kPages) {
    ASSERT_TRUE(plain.WritePage(id, page.data()).ok());
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  // Park both arms so the trace-delta histogram (which assumes a head at
  // page 0) agrees with the charged distances.
  plain.ParkHead(0);
  array.ParkHead(0);
  plain.EnableReadTrace(true);
  array.EnableReadTrace(true);
  std::vector<std::byte> out(plain.page_size());
  for (PageId id : {PageId{99}, PageId{0}, PageId{50}, PageId{50}}) {
    ASSERT_TRUE(plain.ReadPage(id, out.data()).ok());
    ASSERT_TRUE(array.ReadPage(id, out.data()).ok());
  }
  EXPECT_EQ(plain.stats().reads, array.stats().reads);
  EXPECT_EQ(plain.stats().writes, array.stats().writes);
  EXPECT_EQ(plain.stats().read_seek_pages, array.stats().read_seek_pages);
  EXPECT_EQ(plain.stats().write_seek_pages, array.stats().write_seek_pages);
  EXPECT_EQ(plain.head(), array.head());
  EXPECT_EQ(plain.read_trace(), array.read_trace());
  // The charged-distance trace equals the trace-delta histogram on one arm.
  SeekHistogram from_trace = SeekHistogram::FromReadTrace(array.read_trace());
  SeekHistogram from_charges = SeekHistogram::FromDistances(array.seek_trace());
  EXPECT_EQ(from_trace.count(), from_charges.count());
  EXPECT_EQ(from_trace.total(), from_charges.total());
}

// --- Per-spindle accounting --------------------------------------------

TEST(DiskArrayTest, SeeksChargePerSpindleArm) {
  DiskArray array(Geometry(2, 1));
  auto page = MakePage(array.page_size(), 1);
  // Pages 0,2,4.. -> spindle 0 offsets 0,1,2..; 1,3,5.. -> spindle 1.
  for (PageId id = 0; id < 12; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  array.ResetStats();
  array.ParkHead(0);
  std::vector<std::byte> out(array.page_size());
  // Spindle 0: offsets 0 -> 5 (seek 5) -> 1 (seek 4).
  ASSERT_TRUE(array.ReadPage(0, out.data()).ok());
  ASSERT_TRUE(array.ReadPage(10, out.data()).ok());
  ASSERT_TRUE(array.ReadPage(2, out.data()).ok());
  // Spindle 1: offset 0 -> 3 (seek 3); its arm never moved before.
  ASSERT_TRUE(array.ReadPage(1, out.data()).ok());
  ASSERT_TRUE(array.ReadPage(7, out.data()).ok());
  DiskStats s0 = array.spindle_stats(0);
  DiskStats s1 = array.spindle_stats(1);
  EXPECT_EQ(s0.reads, 3u);
  EXPECT_EQ(s0.read_seek_pages, 9u);
  EXPECT_EQ(s1.reads, 2u);
  EXPECT_EQ(s1.read_seek_pages, 3u);
  EXPECT_EQ(array.stats().reads, 5u);
  EXPECT_EQ(array.stats().read_seek_pages, 12u);
  EXPECT_TRUE(array.SpindleStatsConserve());
}

TEST(DiskArrayTest, StripingCutsSeeksVersusSingleArm) {
  // Stride-4 access: a single arm travels 4 pages per read, while on a
  // 4-spindle width-1 stripe the same pages are physically consecutive on
  // one spindle (1 page per read).
  SimulatedDisk plain;
  DiskArray array(Geometry(4, 1));
  auto page = MakePage(plain.page_size(), 2);
  for (PageId id = 0; id < 256; ++id) {
    ASSERT_TRUE(plain.WritePage(id, page.data()).ok());
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  plain.ResetStats();
  plain.ParkHead(0);
  array.ResetStats();
  array.ParkHead(0);
  std::vector<std::byte> out(plain.page_size());
  for (PageId id = 0; id < 256; id += 4) {
    ASSERT_TRUE(plain.ReadPage(id, out.data()).ok());
    ASSERT_TRUE(array.ReadPage(id, out.data()).ok());
  }
  EXPECT_EQ(plain.stats().reads, array.stats().reads);
  EXPECT_LT(array.stats().read_seek_pages, plain.stats().read_seek_pages);
  // Stride 4 lands every read on spindle 0 at consecutive offsets: the one
  // busy arm travels 1 page per read where the single arm travelled 4.
  EXPECT_EQ(array.stats().read_seek_pages,
            plain.stats().read_seek_pages / 4);
  EXPECT_TRUE(array.SpindleStatsConserve());
}

TEST(DiskArrayTest, ConservationHoldsUnderMixedTraffic) {
  DiskArray array(Geometry(3, 2));
  auto page = MakePage(array.page_size(), 3);
  for (PageId id = 0; id < 60; ++id) {
    ASSERT_TRUE(array.WritePage(id * 7 % 60, page.data()).ok());
  }
  std::vector<std::byte> out(array.page_size());
  for (PageId id = 0; id < 60; id += 3) {
    ASSERT_TRUE(array.ReadPage(id, out.data()).ok());
  }
  array.AddSeekPenalty(17, true);
  array.AddSeekPenaltyAt(5, 9, false);
  EXPECT_TRUE(array.SpindleStatsConserve());
  EXPECT_TRUE(SpindleStatsConserve(array));
  uint64_t reads = 0;
  for (const DiskStats& s : array.SpindleStats()) reads += s.reads;
  EXPECT_EQ(reads, array.stats().reads);
}

// --- ReadRun across stripe seams ---------------------------------------

TEST(DiskArrayTest, ReadRunSplitsTransfersAtSpindleSeams) {
  // Stripe width 2 over 2 spindles: pages {0,1} s0, {2,3} s1, {4,5} s0...
  DiskArray array(Geometry(2, 2));
  auto page = MakePage(array.page_size(), 4);
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  array.ResetStats();
  array.ParkHead(0);
  std::vector<std::vector<std::byte>> bufs(6, MakePage(array.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  RunReadResult result = array.ReadRun(0, 6, true, outs.data());
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.pages_ok, 6u);
  // Pages 0..5 cross the seams 1|2 and 3|4: three device transfers.
  EXPECT_EQ(array.stats().reads, 3u);
  EXPECT_EQ(array.stats().pages_read, 6u);
  EXPECT_EQ(array.stats().coalesced_runs, 3u);
  EXPECT_EQ(array.spindle_stats(0).reads, 2u);
  EXPECT_EQ(array.spindle_stats(1).reads, 1u);
  EXPECT_TRUE(array.SpindleStatsConserve());
}

TEST(DiskArrayTest, ReadRunSingleSpindleUnchanged) {
  SimulatedDisk plain;
  DiskArray array(Geometry(1, 1));
  auto page = MakePage(plain.page_size(), 5);
  for (PageId id = 10; id < 18; ++id) {
    ASSERT_TRUE(plain.WritePage(id, page.data()).ok());
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  plain.ResetStats();
  plain.ParkHead(0);
  array.ResetStats();
  array.ParkHead(0);
  std::vector<std::vector<std::byte>> bufs(8, MakePage(plain.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  RunReadResult rp = plain.ReadRun(10, 8, true, outs.data());
  RunReadResult ra = array.ReadRun(10, 8, true, outs.data());
  ASSERT_TRUE(rp.status.ok());
  ASSERT_TRUE(ra.status.ok());
  EXPECT_EQ(plain.stats().reads, array.stats().reads);
  EXPECT_EQ(plain.stats().pages_read, array.stats().pages_read);
  EXPECT_EQ(plain.stats().coalesced_runs, array.stats().coalesced_runs);
  EXPECT_EQ(plain.stats().read_seek_pages, array.stats().read_seek_pages);
}

// --- Log region --------------------------------------------------------

TEST(DiskArrayTest, LogRegionPinsToDedicatedSpindle) {
  DiskArray array(Geometry(4, 1));
  const PageId kLogFirst = 1000;
  array.SetLogRegion(kLogFirst, 64, 3);
  auto page = MakePage(array.page_size(), 6);
  // Log appends land on spindle 3 only; data writes stripe as usual.
  for (PageId id = kLogFirst; id < kLogFirst + 8; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
    EXPECT_EQ(array.SpindleOf(id), 3u);
  }
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  EXPECT_EQ(array.spindle_stats(3).writes, 8u + 2u);  // log + striped 3,7
  EXPECT_TRUE(array.SpindleStatsConserve());
  // Sequential log appends on the dedicated arm cost one page each after
  // the initial positioning seek.
  DiskArray fresh(Geometry(4, 1));
  fresh.SetLogRegion(kLogFirst, 64, 3);
  for (PageId id = kLogFirst; id < kLogFirst + 8; ++id) {
    ASSERT_TRUE(fresh.WritePage(id, page.data()).ok());
  }
  EXPECT_EQ(fresh.spindle_stats(3).write_seek_pages,
            kLogFirst + 7);  // first seek to 1000, then 7 single steps
}

// --- Fault scoping -----------------------------------------------------

TEST(FaultScopingTest, FaultSpindleRestrictsInjection) {
  FaultProfile profile;
  profile.seed = 7;
  profile.permanent_page_fail = 1.0;  // every read of every page fails
  DiskOptions options;
  options.geometry = Geometry(2, 1);
  FaultInjectingDisk disk(profile, options);
  auto page = MakePage(disk.page_size(), 7);
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE(disk.WritePage(id, page.data()).ok());
  }
  disk.set_enabled(true);
  disk.set_fault_spindle(1);
  std::vector<std::byte> out(disk.page_size());
  // Even pages (spindle 0) are out of scope and read fine; odd pages fail.
  for (PageId id = 0; id < 8; id += 2) {
    EXPECT_TRUE(disk.ReadPage(id, out.data()).ok()) << "page " << id;
  }
  for (PageId id = 1; id < 8; id += 2) {
    EXPECT_FALSE(disk.ReadPage(id, out.data()).ok()) << "page " << id;
  }
  EXPECT_EQ(disk.fault_stats().permanent_failures, 4u);
}

TEST(FaultScopingTest, DegradedSpindleFailsItsReadsOnly) {
  DiskOptions options;
  options.geometry = Geometry(4, 1);
  FaultInjectingDisk disk(FaultProfile{}, options);
  auto page = MakePage(disk.page_size(), 8);
  for (PageId id = 0; id < 16; ++id) {
    ASSERT_TRUE(disk.WritePage(id, page.data()).ok());
  }
  disk.set_degraded_spindle(2);
  std::vector<std::byte> out(disk.page_size());
  size_t failed = 0;
  for (PageId id = 0; id < 16; ++id) {
    Status s = disk.ReadPage(id, out.data());
    if (disk.SpindleOf(id) == 2u) {
      EXPECT_TRUE(s.IsCorruption()) << "page " << id;
      ++failed;
    } else {
      EXPECT_TRUE(s.ok()) << "page " << id;
    }
  }
  EXPECT_EQ(failed, 4u);
  EXPECT_EQ(disk.fault_stats().degraded_reads, 4u);
  // Recovery: clearing the degraded mark restores every page (the platter
  // content was never lost, only unreachable).
  disk.set_degraded_spindle(-1);
  for (PageId id = 0; id < 16; ++id) {
    EXPECT_TRUE(disk.ReadPage(id, out.data()).ok());
  }
}

TEST(FaultScopingTest, ScopedCrashSparesOtherSpindles) {
  DiskOptions options;
  options.geometry = Geometry(2, 1);
  FaultInjectingDisk disk(FaultProfile{}, options);
  auto page = MakePage(disk.page_size(), 9);
  // Crash spindle 1 after 2 more successful writes to it.
  disk.ScheduleCrash(2, CrashWriteMode::kDropWrite, /*spindle=*/1);
  // Writes: s1, s1 survive; third s1 write crashes.  s0 writes never count
  // toward the fuse and keep succeeding afterwards.
  ASSERT_TRUE(disk.WritePage(1, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(3, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  EXPECT_FALSE(disk.WritePage(5, page.data()).ok());  // the crash write
  EXPECT_FALSE(disk.WritePage(7, page.data()).ok());  // still down
  EXPECT_TRUE(disk.WritePage(2, page.data()).ok());   // other enclosure
  std::vector<std::byte> out(disk.page_size());
  EXPECT_TRUE(disk.ReadPage(1, out.data()).ok());     // reads still work
  EXPECT_TRUE(disk.ReadPage(5, out.data()).IsNotFound());  // dropped
}

// --- Per-query spindle attribution -------------------------------------

TEST(DiskArrayTest, QueryAttributionCarriesSpindleDimension) {
  DiskArray array(Geometry(3, 1));
  auto page = MakePage(array.page_size(), 10);
  for (PageId id = 0; id < 30; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  auto ctx = std::make_shared<obs::QueryContext>(1, "test");
  {
    obs::ScopedQueryContext scope(ctx);
    std::vector<std::byte> out(array.page_size());
    for (PageId id = 0; id < 30; id += 2) {
      ASSERT_TRUE(array.ReadPage(id, out.data()).ok());
    }
  }
  obs::QueryIoSnapshot snap = ctx->io.Snapshot();
  uint64_t reads = 0;
  uint64_t seeks = 0;
  for (size_t s = 0; s < obs::kMaxTrackedSpindles; ++s) {
    reads += snap.spindle_reads[s];
    seeks += snap.spindle_seek_pages[s];
  }
  EXPECT_EQ(snap.disk_reads, 15u);
  EXPECT_EQ(reads, snap.disk_reads);
  EXPECT_EQ(seeks, snap.read_seek_pages);
  // Spindle spread: pages 0,2,4.. mod 3 touch every spindle.
  EXPECT_GT(snap.spindle_reads[0], 0u);
  EXPECT_GT(snap.spindle_reads[1], 0u);
  EXPECT_GT(snap.spindle_reads[2], 0u);
}

// --- AsyncDisk over an array -------------------------------------------

TEST(DiskArrayTest, AsyncDiskForwardsArrayGeometry) {
  DiskArray array(Geometry(4, 1));
  auto page = MakePage(array.page_size(), 11);
  for (PageId id = 0; id < 64; ++id) {
    ASSERT_TRUE(array.WritePage(id, page.data()).ok());
  }
  array.ResetStats();
  array.ParkHead(0);
  AsyncDisk async(&array);
  EXPECT_EQ(async.num_spindles(), 4u);
  std::vector<std::byte> out(array.page_size());
  for (PageId id = 0; id < 64; ++id) {
    ASSERT_TRUE(async.ReadPage(id, out.data()).ok());
  }
  async.Drain();
  EXPECT_EQ(array.stats().reads, 64u);
  EXPECT_TRUE(array.SpindleStatsConserve());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(async.spindle_stats(s).reads, array.spindle_stats(s).reads);
  }
}

TEST(DiskArrayTest, ValidateGeometryNormalizesDefaults) {
  DiskGeometry g = ValidateGeometry(DiskGeometry{});
  EXPECT_EQ(g.spindles, 1u);
  EXPECT_EQ(g.stripe_width, 1u);
  DiskGeometry zero;
  zero.spindles = 0;
  zero.stripe_width = 0;
  DiskGeometry fixed = ValidateGeometry(zero);
  EXPECT_EQ(fixed.spindles, 1u);
  EXPECT_EQ(fixed.stripe_width, 1u);
}

}  // namespace
}  // namespace cobra
