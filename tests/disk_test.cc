#include <cstddef>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace cobra {
namespace {

std::vector<std::byte> MakePage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

TEST(DiskTest, ReadBackWrittenPage) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 0xAB);
  ASSERT_TRUE(disk.WritePage(3, page.data()).ok());
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(3, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(DiskTest, ReadUnwrittenPageIsNotFound) {
  SimulatedDisk disk;
  std::vector<std::byte> out(disk.page_size());
  EXPECT_TRUE(disk.ReadPage(5, out.data()).IsNotFound());
}

TEST(DiskTest, SeekDistanceIsHeadDelta) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 1);
  // Populate pages 0, 10, 4 without charging read seeks.
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(10, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(4, page.data()).ok());
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(10, out.data()).ok());  // |10 - 0|  = 10
  ASSERT_TRUE(disk.ReadPage(4, out.data()).ok());   // |4  - 10| = 6
  ASSERT_TRUE(disk.ReadPage(4, out.data()).ok());   // |4  - 4|  = 0
  EXPECT_EQ(disk.stats().reads, 3u);
  EXPECT_EQ(disk.stats().read_seek_pages, 16u);
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 16.0 / 3.0);
}

TEST(DiskTest, WriteSeeksTrackedSeparately) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 2);
  ASSERT_TRUE(disk.WritePage(100, page.data()).ok());
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().write_seek_pages, 100u);
  EXPECT_EQ(disk.stats().reads, 0u);
  EXPECT_EQ(disk.stats().read_seek_pages, 0u);
}

TEST(DiskTest, ParkHeadDoesNotCharge) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 3);
  ASSERT_TRUE(disk.WritePage(50, page.data()).ok());
  disk.ResetStats();
  disk.ParkHead(0);
  EXPECT_EQ(disk.head(), 0u);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(50, out.data()).ok());
  EXPECT_EQ(disk.stats().read_seek_pages, 50u);
}

TEST(DiskTest, AvgSeekZeroWithNoReads) {
  SimulatedDisk disk;
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 0.0);
}

TEST(DiskTest, SparseAllocationTracksSpanAndCount) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 4);
  ASSERT_TRUE(disk.WritePage(1000000, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(2, page.data()).ok());
  EXPECT_EQ(disk.allocated_pages(), 2u);
  EXPECT_EQ(disk.page_span(), 1000001u);
}

TEST(DiskTest, OverwriteKeepsSingleAllocation) {
  SimulatedDisk disk;
  auto a = MakePage(disk.page_size(), 5);
  auto b = MakePage(disk.page_size(), 6);
  ASSERT_TRUE(disk.WritePage(7, a.data()).ok());
  ASSERT_TRUE(disk.WritePage(7, b.data()).ok());
  EXPECT_EQ(disk.allocated_pages(), 1u);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(7, out.data()).ok());
  EXPECT_EQ(out, b);
}

TEST(DiskTest, InvalidPageIdRejected) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 7);
  EXPECT_TRUE(
      disk.WritePage(kInvalidPageId, page.data()).IsInvalidArgument());
}

TEST(DiskTest, CustomPageSize) {
  SimulatedDisk disk(DiskOptions{.page_size = 4096});
  EXPECT_EQ(disk.page_size(), 4096u);
  auto page = MakePage(4096, 8);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(disk.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(DiskTest, ElevatorFriendlySequentialReadsAreCheap) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 9);
  for (PageId p = 0; p < 100; ++p) {
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::byte> out(disk.page_size());
  for (PageId p = 0; p < 100; ++p) {
    ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  }
  // Sequential sweep: total seek = 99 pages over 100 reads.
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 0.99);
}

TEST(SeekHelperTest, SeekDistancePagesIsAbsoluteDelta) {
  EXPECT_EQ(SeekDistancePages(0, 0), 0u);
  EXPECT_EQ(SeekDistancePages(3, 10), 7u);
  EXPECT_EQ(SeekDistancePages(10, 3), 7u);
  EXPECT_EQ(SeekDistancePages(0, kInvalidPageId - 1), kInvalidPageId - 1);
}

TEST(SeekHelperTest, ScanNextFollowsSweepAndReverses) {
  std::multimap<PageId, int> pending{{2, 0}, {5, 1}, {9, 2}};
  bool up = true;
  // Head at 4 sweeping up: nearest at-or-above is 5, then 9, then reverse
  // down to 2.
  auto it = ScanNext(pending, 4, &up);
  EXPECT_EQ(it->first, 5u);
  EXPECT_TRUE(up);
  pending.erase(it);
  it = ScanNext(pending, 5, &up);
  EXPECT_EQ(it->first, 9u);
  pending.erase(it);
  it = ScanNext(pending, 9, &up);
  EXPECT_EQ(it->first, 2u);
  EXPECT_FALSE(up);
  pending.erase(it);
  EXPECT_EQ(ScanNext(pending, 2, &up), pending.end());
}

TEST(SeekHelperTest, ScanNextDownSweepTakesHighestBelowHead) {
  std::multimap<PageId, int> pending{{1, 0}, {6, 1}, {8, 2}};
  bool up = false;
  auto it = ScanNext(pending, 7, &up);
  EXPECT_EQ(it->first, 6u);
  EXPECT_FALSE(up);
  pending.erase(it);
  it = ScanNext(pending, 6, &up);
  EXPECT_EQ(it->first, 1u);
  pending.erase(it);
  // Nothing below: reverses up.
  it = ScanNext(pending, 1, &up);
  EXPECT_EQ(it->first, 8u);
  EXPECT_TRUE(up);
}

// Captures run events for the vectored-read listener tests.
struct RunCapture : DiskEventListener {
  struct Event {
    PageId first = kInvalidPageId;
    size_t pages = 0;
    uint64_t seek = 0;
  };
  std::vector<Event> runs;
  std::vector<Event> singles;

  void OnDiskRead(PageId page, uint64_t seek_pages) override {
    singles.push_back({page, 1, seek_pages});
  }
  void OnDiskWrite(PageId, uint64_t) override {}
  void OnDiskReadRun(PageId first_page, size_t pages,
                     uint64_t seek_pages) override {
    runs.push_back({first_page, pages, seek_pages});
  }
};

TEST(DiskReadRunTest, AscendingRunChargesOneSeekPlusSequentialTransfers) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 1);
  for (PageId p = 10; p < 14; ++p) {
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::vector<std::byte>> bufs(4, MakePage(disk.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  RunReadResult result = disk.ReadRun(10, 4, /*ascending=*/true, outs.data());
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.pages_ok, 4u);
  // One seek to the run's entry (|10 - 0|) plus one page per subsequent
  // sequential transfer.
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().read_seek_pages, 10u + 3u);
  EXPECT_EQ(disk.stats().pages_read, 4u);
  EXPECT_EQ(disk.stats().coalesced_runs, 1u);
  EXPECT_EQ(disk.head(), 13u);
  for (auto& b : bufs) EXPECT_EQ(b, page);
}

TEST(DiskReadRunTest, DescendingRunEntersAtHighEnd) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 2);
  for (PageId p = 4; p < 8; ++p) {
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  disk.ResetStats();
  disk.ParkHead(9);
  std::vector<std::vector<std::byte>> bufs(4, MakePage(disk.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  RunReadResult result = disk.ReadRun(4, 4, /*ascending=*/false, outs.data());
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.pages_ok, 4u);
  // Entry at page 7 (|7 - 9| = 2) then 3 sequential transfers down to 4.
  EXPECT_EQ(disk.stats().read_seek_pages, 2u + 3u);
  EXPECT_EQ(disk.head(), 4u);
}

TEST(DiskReadRunTest, SinglePageRunMatchesReadPageAccounting) {
  SimulatedDisk a;
  SimulatedDisk b;
  auto page = MakePage(a.page_size(), 3);
  ASSERT_TRUE(a.WritePage(20, page.data()).ok());
  ASSERT_TRUE(b.WritePage(20, page.data()).ok());
  a.ResetStats();
  b.ResetStats();
  a.ParkHead(5);
  b.ParkHead(5);
  std::vector<std::byte> out(a.page_size());
  std::byte* outs[] = {out.data()};
  ASSERT_TRUE(a.ReadRun(20, 1, true, outs).status.ok());
  ASSERT_TRUE(b.ReadPage(20, out.data()).ok());
  EXPECT_EQ(a.stats().reads, b.stats().reads);
  EXPECT_EQ(a.stats().read_seek_pages, b.stats().read_seek_pages);
  EXPECT_EQ(a.stats().pages_read, b.stats().pages_read);
  EXPECT_EQ(a.stats().coalesced_runs, 0u);
  EXPECT_EQ(a.head(), b.head());
}

TEST(DiskReadRunTest, MissingPageStopsTransferAtFault) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 4);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(1, page.data()).ok());
  // Page 2 never written; page 3 written.
  ASSERT_TRUE(disk.WritePage(3, page.data()).ok());
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::vector<std::byte>> bufs(4, MakePage(disk.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  RunReadResult result = disk.ReadRun(0, 4, true, outs.data());
  EXPECT_TRUE(result.status.IsNotFound());
  EXPECT_EQ(result.pages_ok, 2u);
  // Only the good prefix transferred: pages 0 and 1.
  EXPECT_EQ(disk.stats().pages_read, 2u);
  EXPECT_EQ(disk.head(), 1u);
  EXPECT_EQ(bufs[0], page);
  EXPECT_EQ(bufs[1], page);
}

TEST(DiskReadRunTest, EmptyRunIsInvalidArgument) {
  SimulatedDisk disk;
  EXPECT_TRUE(disk.ReadRun(0, 0, true, nullptr).status.IsInvalidArgument());
}

TEST(DiskReadRunTest, ListenerSeesOneRunEventAndTraceStaysPerPage) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 5);
  for (PageId p = 0; p < 3; ++p) {
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  RunCapture capture;
  disk.set_listener(&capture);
  disk.EnableReadTrace(true);
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::vector<std::byte>> bufs(3, MakePage(disk.page_size(), 0));
  std::vector<std::byte*> outs;
  for (auto& b : bufs) outs.push_back(b.data());
  ASSERT_TRUE(disk.ReadRun(0, 3, true, outs.data()).status.ok());
  ASSERT_EQ(capture.runs.size(), 1u);
  EXPECT_EQ(capture.runs[0].first, 0u);
  EXPECT_EQ(capture.runs[0].pages, 3u);
  EXPECT_EQ(capture.runs[0].seek, 2u);
  EXPECT_TRUE(capture.singles.empty());
  // The read trace keeps per-page granularity for the seek histogram.
  EXPECT_EQ(disk.read_trace().size(), 3u);
  disk.set_listener(nullptr);
}

}  // namespace
}  // namespace cobra
