#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace cobra {
namespace {

std::vector<std::byte> MakePage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

TEST(DiskTest, ReadBackWrittenPage) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 0xAB);
  ASSERT_TRUE(disk.WritePage(3, page.data()).ok());
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(3, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(DiskTest, ReadUnwrittenPageIsNotFound) {
  SimulatedDisk disk;
  std::vector<std::byte> out(disk.page_size());
  EXPECT_TRUE(disk.ReadPage(5, out.data()).IsNotFound());
}

TEST(DiskTest, SeekDistanceIsHeadDelta) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 1);
  // Populate pages 0, 10, 4 without charging read seeks.
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(10, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(4, page.data()).ok());
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(10, out.data()).ok());  // |10 - 0|  = 10
  ASSERT_TRUE(disk.ReadPage(4, out.data()).ok());   // |4  - 10| = 6
  ASSERT_TRUE(disk.ReadPage(4, out.data()).ok());   // |4  - 4|  = 0
  EXPECT_EQ(disk.stats().reads, 3u);
  EXPECT_EQ(disk.stats().read_seek_pages, 16u);
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 16.0 / 3.0);
}

TEST(DiskTest, WriteSeeksTrackedSeparately) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 2);
  ASSERT_TRUE(disk.WritePage(100, page.data()).ok());
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().write_seek_pages, 100u);
  EXPECT_EQ(disk.stats().reads, 0u);
  EXPECT_EQ(disk.stats().read_seek_pages, 0u);
}

TEST(DiskTest, ParkHeadDoesNotCharge) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 3);
  ASSERT_TRUE(disk.WritePage(50, page.data()).ok());
  disk.ResetStats();
  disk.ParkHead(0);
  EXPECT_EQ(disk.head(), 0u);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(50, out.data()).ok());
  EXPECT_EQ(disk.stats().read_seek_pages, 50u);
}

TEST(DiskTest, AvgSeekZeroWithNoReads) {
  SimulatedDisk disk;
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 0.0);
}

TEST(DiskTest, SparseAllocationTracksSpanAndCount) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 4);
  ASSERT_TRUE(disk.WritePage(1000000, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(2, page.data()).ok());
  EXPECT_EQ(disk.allocated_pages(), 2u);
  EXPECT_EQ(disk.page_span(), 1000001u);
}

TEST(DiskTest, OverwriteKeepsSingleAllocation) {
  SimulatedDisk disk;
  auto a = MakePage(disk.page_size(), 5);
  auto b = MakePage(disk.page_size(), 6);
  ASSERT_TRUE(disk.WritePage(7, a.data()).ok());
  ASSERT_TRUE(disk.WritePage(7, b.data()).ok());
  EXPECT_EQ(disk.allocated_pages(), 1u);
  std::vector<std::byte> out(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(7, out.data()).ok());
  EXPECT_EQ(out, b);
}

TEST(DiskTest, InvalidPageIdRejected) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 7);
  EXPECT_TRUE(
      disk.WritePage(kInvalidPageId, page.data()).IsInvalidArgument());
}

TEST(DiskTest, CustomPageSize) {
  SimulatedDisk disk(DiskOptions{.page_size = 4096});
  EXPECT_EQ(disk.page_size(), 4096u);
  auto page = MakePage(4096, 8);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(disk.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(DiskTest, ElevatorFriendlySequentialReadsAreCheap) {
  SimulatedDisk disk;
  auto page = MakePage(disk.page_size(), 9);
  for (PageId p = 0; p < 100; ++p) {
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  disk.ResetStats();
  disk.ParkHead(0);
  std::vector<std::byte> out(disk.page_size());
  for (PageId p = 0; p < 100; ++p) {
    ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  }
  // Sequential sweep: total seek = 99 pages over 100 reads.
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerRead(), 0.99);
}

}  // namespace
}  // namespace cobra
