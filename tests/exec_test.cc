#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "exec/expr.h"
#include "exec/filter_project.h"
#include "exec/iterator.h"
#include "exec/join.h"
#include "exec/pointer_join.h"
#include "exec/scan.h"
#include "exec/sort_limit.h"
#include "exec/value.h"
#include "file/heap_file.h"
#include "index/btree.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra::exec {
namespace {

Row IntRow(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int(v));
  return row;
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Null().kind(), ValueKind::kNull);
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsStr(), "hi");
  EXPECT_EQ(Value::Ref(42).AsOid(), 42u);
  AssembledObject obj;
  EXPECT_EQ(Value::Obj(&obj).AsObject(), &obj);
}

TEST(ValueTest, CompareIntsAndDoubles) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(*Value::Int(3).Compare(Value::Int(2)), 1);
  EXPECT_EQ(*Value::Int(1).Compare(Value::Double(1.0)), 0);
  EXPECT_EQ(*Value::Double(0.5).Compare(Value::Int(1)), -1);
}

TEST(ValueTest, CompareStringsAndOids) {
  EXPECT_EQ(*Value::Str("a").Compare(Value::Str("b")), -1);
  EXPECT_EQ(*Value::Ref(10).Compare(Value::Ref(10)), 0);
}

TEST(ValueTest, IncomparableKindsError) {
  EXPECT_FALSE(Value::Int(1).Compare(Value::Str("x")).ok());
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_EQ(*Value::Null().Compare(Value::Int(0)), -1);
  EXPECT_EQ(*Value::Int(0).Compare(Value::Null()), 1);
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, JoinEqualityNeverMatchesNull) {
  EXPECT_FALSE(Value::Null().EqualsForJoin(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsForJoin(Value::Int(0)));
  EXPECT_TRUE(Value::Int(5).EqualsForJoin(Value::Int(5)));
  EXPECT_FALSE(Value::Int(5).EqualsForJoin(Value::Str("5")));
}

TEST(ValueTest, HashConsistentWithJoinEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  // Int/double that compare equal hash equal (hash-join correctness).
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Ref(9).ToString(), "oid:9");
}

TEST(ValueTest, ConcatRows) {
  Row joined = ConcatRows(IntRow({1, 2}), IntRow({3}));
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined[2].AsInt(), 3);
}

// ---------------------------------------------------------------- Expr

TEST(ExprTest, ColAndLit) {
  Row row = IntRow({10, 20});
  EXPECT_EQ(Col(1)->Eval(row)->AsInt(), 20);
  EXPECT_EQ(LitInt(5)->Eval(row)->AsInt(), 5);
  EXPECT_TRUE(Col(9)->Eval(row).status().IsOutOfRange());
}

TEST(ExprTest, Comparisons) {
  Row row = IntRow({10, 20});
  EXPECT_EQ(Cmp(CmpOp::kLt, Col(0), Col(1))->Eval(row)->AsInt(), 1);
  EXPECT_EQ(Cmp(CmpOp::kGe, Col(0), Col(1))->Eval(row)->AsInt(), 0);
  EXPECT_EQ(Cmp(CmpOp::kEq, Col(0), LitInt(10))->Eval(row)->AsInt(), 1);
  EXPECT_EQ(Cmp(CmpOp::kNe, Col(0), LitInt(10))->Eval(row)->AsInt(), 0);
}

TEST(ExprTest, NullComparisonIsUnknown) {
  Row row = {Value::Null(), Value::Int(1)};
  auto v = Cmp(CmpOp::kEq, Col(0), Col(1))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  // And a null predicate is false.
  auto pred = Cmp(CmpOp::kEq, Col(0), Col(1));
  EXPECT_FALSE(*EvalPredicate(*pred, row));
}

TEST(ExprTest, Arithmetic) {
  Row row = IntRow({7, 2});
  EXPECT_EQ(Arith(ArithOp::kAdd, Col(0), Col(1))->Eval(row)->AsInt(), 9);
  EXPECT_EQ(Arith(ArithOp::kSub, Col(0), Col(1))->Eval(row)->AsInt(), 5);
  EXPECT_EQ(Arith(ArithOp::kMul, Col(0), Col(1))->Eval(row)->AsInt(), 14);
  EXPECT_EQ(Arith(ArithOp::kDiv, Col(0), Col(1))->Eval(row)->AsInt(), 3);
  EXPECT_EQ(Arith(ArithOp::kMod, Col(0), Col(1))->Eval(row)->AsInt(), 1);
  EXPECT_TRUE(Arith(ArithOp::kDiv, Col(0), LitInt(0))
                  ->Eval(row)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExprTest, MixedArithmeticPromotesToDouble) {
  Row row = {Value::Int(3), Value::Double(0.5)};
  auto v = Arith(ArithOp::kMul, Col(0), Col(1))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 1.5);
}

TEST(ExprTest, BooleanShortCircuit) {
  Row row = IntRow({1, 0});
  EXPECT_EQ(And(Col(0), Col(1))->Eval(row)->AsInt(), 0);
  EXPECT_EQ(Or(Col(1), Col(0))->Eval(row)->AsInt(), 1);
  EXPECT_EQ(Not(Col(1))->Eval(row)->AsInt(), 1);
  // Short circuit: the erroring right side is never evaluated.
  auto guarded = And(LitInt(0), Col(99));
  EXPECT_EQ(guarded->Eval(row)->AsInt(), 0);
}

TEST(ExprTest, ObjFieldAndChild) {
  ObjectArena arena;
  AssembledObject* root = arena.New();
  AssembledObject* child = arena.New();
  root->fields = {5, 6};
  child->fields = {70};
  root->children = {child, nullptr};
  Row row = {Value::Obj(root)};
  EXPECT_EQ(ObjField(Col(0), 1)->Eval(row)->AsInt(), 6);
  EXPECT_EQ(ObjField(ObjChild(Col(0), 0), 0)->Eval(row)->AsInt(), 70);
  // Null child propagates to null, not an error.
  EXPECT_TRUE(ObjField(ObjChild(Col(0), 1), 0)->Eval(row)->is_null());
  EXPECT_TRUE(ObjField(Col(0), 9)->Eval(row).status().IsOutOfRange());
}

TEST(ExprTest, FnEscapeHatch) {
  auto fn = Fn([](const Row& row) -> Result<Value> {
    return Value::Int(row[0].AsInt() * row[0].AsInt());
  });
  Row row = IntRow({12});
  EXPECT_EQ(fn->Eval(row)->AsInt(), 144);
}

// ---------------------------------------------------------------- Operators

TEST(ScanTest, VectorScanReplaysRows) {
  VectorScan scan({IntRow({1}), IntRow({2}), IntRow({3})});
  auto rows = DrainAll(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[2][0].AsInt(), 3);
  // Re-open replays from the start.
  auto again = DrainAll(&scan);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
}

TEST(FilterTest, KeepsMatchingRows) {
  auto scan = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({1}), IntRow({5}), IntRow({10}), IntRow({2})});
  Filter filter(std::move(scan), Cmp(CmpOp::kGe, Col(0), LitInt(5)));
  auto rows = DrainAll(&filter);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(filter.rows_in(), 4u);
  EXPECT_EQ(filter.rows_out(), 2u);
}

TEST(ProjectTest, ComputesExpressions) {
  auto scan = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({3, 4})});
  std::vector<ExprPtr> exprs;
  exprs.push_back(Arith(ArithOp::kAdd, Col(0), Col(1)));
  exprs.push_back(Col(0));
  Project project(std::move(scan), std::move(exprs));
  auto rows = DrainAll(&project);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 7);
  EXPECT_EQ((*rows)[0][1].AsInt(), 3);
}

TEST(LimitTest, StopsEarly) {
  auto scan = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({1}), IntRow({2}), IntRow({3})});
  Limit limit(std::move(scan), 2);
  auto rows = DrainAll(&limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(SortTest, SortsByKeys) {
  auto scan = std::make_unique<VectorScan>(std::vector<Row>{
      IntRow({3, 1}), IntRow({1, 2}), IntRow({2, 3}), IntRow({1, 1})});
  std::vector<SortKey> keys;
  keys.push_back({Col(0), true});
  keys.push_back({Col(1), false});
  Sort sort(std::move(scan), std::move(keys));
  auto rows = DrainAll(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
  EXPECT_EQ((*rows)[0][1].AsInt(), 2);  // descending second key
  EXPECT_EQ((*rows)[1][1].AsInt(), 1);
  EXPECT_EQ((*rows)[3][0].AsInt(), 3);
}

TEST(HashJoinTest, EquiJoin) {
  auto left = std::make_unique<VectorScan>(std::vector<Row>{
      IntRow({1, 100}), IntRow({2, 200}), IntRow({2, 201}), IntRow({3, 300})});
  auto right = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({2, 7}), IntRow({3, 8}), IntRow({4, 9})});
  std::vector<ExprPtr> lk;
  lk.push_back(Col(0));
  std::vector<ExprPtr> rk;
  rk.push_back(Col(0));
  HashJoin join(std::move(left), std::move(right), std::move(lk),
                std::move(rk));
  auto rows = DrainAll(&join);
  ASSERT_TRUE(rows.ok());
  // key 2 matches twice, key 3 once.
  EXPECT_EQ(rows->size(), 3u);
  for (const Row& row : *rows) {
    EXPECT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0].AsInt(), row[2].AsInt());
  }
}

TEST(HashJoinTest, EmptyInputs) {
  {
    auto left = std::make_unique<VectorScan>(std::vector<Row>{});
    auto right = std::make_unique<VectorScan>(
        std::vector<Row>{IntRow({1})});
    std::vector<ExprPtr> lk;
    lk.push_back(Col(0));
    std::vector<ExprPtr> rk;
    rk.push_back(Col(0));
    HashJoin join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk));
    auto rows = DrainAll(&join);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
}

TEST(HashJoinTest, RequiresKeys) {
  auto left = std::make_unique<VectorScan>(std::vector<Row>{});
  auto right = std::make_unique<VectorScan>(std::vector<Row>{});
  HashJoin join(std::move(left), std::move(right), {}, {});
  EXPECT_TRUE(join.Open().IsInvalidArgument());
}

TEST(NestedLoopJoinTest, ArbitraryPredicate) {
  auto left = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({1}), IntRow({5})});
  auto right = std::make_unique<VectorScan>(
      std::vector<Row>{IntRow({2}), IntRow({6})});
  // left < right
  NestedLoopJoin join(std::move(left), std::move(right),
                      Cmp(CmpOp::kLt, Col(0), Col(1)));
  auto rows = DrainAll(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // (1,2) (1,6) (5,6)
}

class StorageBackedExecTest : public ::testing::Test {
 protected:
  StorageBackedExecTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 256}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 64) {}

  void Seed(int count) {
    for (int i = 0; i < count; ++i) {
      ObjectData obj;
      obj.oid = kInvalidOid;
      obj.type_id = 9;
      obj.fields = {i, i * 10, 0, 0};
      obj.refs.assign(8, kInvalidOid);
      auto oid = store_.Insert(obj, &file_);
      ASSERT_TRUE(oid.ok());
      oids_.push_back(*oid);
    }
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
  std::vector<Oid> oids_;
};

TEST_F(StorageBackedExecTest, OidScanEmitsAllOids) {
  Seed(25);
  OidScan scan(&file_);
  auto rows = DrainAll(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 25u);
  EXPECT_EQ((*rows)[0][0].kind(), ValueKind::kOid);
}

TEST_F(StorageBackedExecTest, ObjectFieldScanFlattens) {
  Seed(5);
  ObjectFieldScan scan(&file_, 2);
  auto rows = DrainAll(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  const Row& row = (*rows)[0];
  ASSERT_EQ(row.size(), 4u);  // oid, type, field0, field1
  EXPECT_EQ(row[1].AsInt(), 9);
  EXPECT_EQ(row[2].AsInt(), 0);
  EXPECT_EQ(row[3].AsInt(), 0);
}

TEST_F(StorageBackedExecTest, BTreeScanRange) {
  PageAllocator allocator(1000);
  auto tree = BTree::Create(&buffer_, &allocator);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree->Put(k, k * 2).ok());
  }
  BTreeScan scan(&tree.value(), 10, 20);
  auto rows = DrainAll(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
  EXPECT_EQ((*rows)[9][0].AsInt(), 19);
}

TEST_F(StorageBackedExecTest, PointerJoinResolvesReferences) {
  Seed(3);
  // Rows referencing the seeded objects.
  std::vector<Row> inputs;
  for (Oid oid : oids_) {
    inputs.push_back({Value::Ref(oid), Value::Int(7)});
  }
  inputs.push_back({Value::Ref(kInvalidOid), Value::Int(8)});  // dangling
  auto scan = std::make_unique<VectorScan>(std::move(inputs));
  PointerJoin join(std::move(scan), 0, 2, &store_);
  auto rows = DrainAll(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // dangling dropped
  const Row& row = (*rows)[1];
  ASSERT_EQ(row.size(), 5u);  // input(2) + oid + 2 fields
  EXPECT_EQ(row[3].AsInt(), 1);
  EXPECT_EQ(row[4].AsInt(), 10);
}

TEST_F(StorageBackedExecTest, PointerJoinOuterKeepsUnmatched) {
  Seed(1);
  std::vector<Row> inputs = {{Value::Ref(kInvalidOid)}};
  auto scan = std::make_unique<VectorScan>(std::move(inputs));
  PointerJoin join(std::move(scan), 0, 2, &store_, /*keep_unmatched=*/true);
  auto rows = DrainAll(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0][1].is_null());
}

}  // namespace
}  // namespace cobra::exec
