// Randomized fault-schedule stress over the genealogy workload (seeded,
// reproducible).  Built as a separate binary carrying the `stress` ctest
// label so the CI sanitizer job can run it explicitly: the point is that no
// fault schedule crashes the engine under ASan/UBSan, identical seeds give
// identical surviving-object sets, and with injection off nothing drops.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "assembly/assembly_operator.h"
#include "storage/faulty_disk.h"
#include "workload/genealogy.h"

namespace cobra {
namespace {

// Heavier than FaultProfile::Mixed so every category fires within a small
// workload; rates are still low enough that most objects survive.
FaultProfile StressProfile(uint64_t seed) {
  FaultProfile profile;
  profile.seed = seed;
  profile.transient_read_fail = 0.05;
  profile.permanent_page_fail = 0.005;
  profile.bit_flip = 0.02;
  profile.torn_page = 0.01;
  profile.extra_latency = 0.02;
  return profile;
}

GenealogyOptions StressOptions() {
  GenealogyOptions options;
  options.num_people = 400;
  options.seed = 11;
  // A small pool forces evictions and re-reads, so retried pages re-draw
  // faults at later attempt numbers too.
  options.buffer_frames = 64;
  return options;
}

// Records the OIDs of dropped complex objects, in drop order.
class DropRecorder : public AssemblyObserver {
 public:
  void OnEvent(const AssemblyEvent& event) override {
    if (event.kind == AssemblyEvent::Kind::kDrop) {
      drops_.push_back(event.oid);
    }
  }
  const std::vector<Oid>& drops() const { return drops_; }

 private:
  std::vector<Oid> drops_;
};

struct RunOutcome {
  Status status = Status::OK();
  std::vector<Oid> matches;  // emission order
  std::vector<Oid> drops;    // drop order
  AssemblyStats stats;
  FaultStats faults;
};

RunOutcome RunPlan(GenealogyDatabase* db, const AssemblyOptions& options) {
  RunOutcome out;
  out.status = db->ColdRestart();
  if (!out.status.ok()) return out;

  AssemblyOperator* assembly = nullptr;
  std::unique_ptr<exec::Iterator> plan =
      MakeLivesCloseToFatherPlan(db, options, &assembly);
  DropRecorder recorder;
  assembly->set_observer(&recorder);

  out.status = plan->Open();
  if (out.status.ok()) {
    exec::RowBatch batch;
    for (;;) {
      Result<size_t> n = plan->NextBatch(&batch);
      if (!n.ok()) {
        out.status = n.status();
        break;
      }
      if (*n == 0) break;
      for (size_t i = 0; i < *n; ++i) {
        out.matches.push_back(batch[i][0].AsObject()->oid);
      }
    }
  }
  out.stats = assembly->stats();
  out.drops = recorder.drops();
  if (db->faulty != nullptr) out.faults = db->faulty->fault_stats();
  Status closed = plan->Close();
  if (out.status.ok()) out.status = closed;
  return out;
}

std::set<Oid> AsSet(const std::vector<Oid>& v) { return {v.begin(), v.end()}; }

TEST(FaultInjectionStressTest, NoInjectionMeansNoDrops) {
  auto built = BuildGenealogyDatabase(StressOptions());
  ASSERT_TRUE(built.ok());
  auto db = std::move(built).value();
  ASSERT_EQ(db->faulty, nullptr);  // profile all-zero: plain disk

  AssemblyOptions options;
  options.error_policy = ErrorPolicy::kSkipObject;
  RunOutcome run = RunPlan(db.get(), options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.stats.objects_dropped, 0u);
  EXPECT_TRUE(run.drops.empty());

  auto naive = LivesCloseToFatherNaive(db.get());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(AsSet(run.matches), AsSet(*naive));
}

TEST(FaultInjectionStressTest, IdenticalSeedsProduceIdenticalOutcomes) {
  GenealogyOptions options = StressOptions();
  options.faults = StressProfile(0xC0B7A);
  auto built = BuildGenealogyDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(built).value();
  ASSERT_NE(db->faulty, nullptr);

  AssemblyOptions aopts;
  aopts.error_policy = ErrorPolicy::kSkipObject;
  // ColdRestart (inside RunPlan) resets fault state, so both runs replay
  // the identical schedule.
  RunOutcome first = RunPlan(db.get(), aopts);
  RunOutcome second = RunPlan(db.get(), aopts);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();

  EXPECT_GT(first.faults.total(), 0u) << "profile injected nothing";
  EXPECT_EQ(first.matches, second.matches);  // order included
  EXPECT_EQ(first.drops, second.drops);
  EXPECT_EQ(first.stats.objects_dropped, second.stats.objects_dropped);
  EXPECT_EQ(first.faults.total(), second.faults.total());
}

TEST(FaultInjectionStressTest, FailQueryPolicySurfacesFirstError) {
  GenealogyOptions options = StressOptions();
  options.faults.seed = 3;
  options.faults.permanent_page_fail = 1.0;  // every page read fails
  auto built = BuildGenealogyDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(built).value();

  AssemblyOptions aopts;  // default policy: kFailQuery
  RunOutcome failed = RunPlan(db.get(), aopts);
  ASSERT_FALSE(failed.status.ok());
  EXPECT_TRUE(failed.status.IsCorruption()) << failed.status.ToString();
  EXPECT_TRUE(failed.matches.empty());

  // Same schedule under kSkipObject: the query completes with every complex
  // object dropped instead of failing.
  aopts.error_policy = ErrorPolicy::kSkipObject;
  RunOutcome degraded = RunPlan(db.get(), aopts);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.matches.empty());
  EXPECT_EQ(degraded.stats.objects_dropped, degraded.stats.complex_admitted);
  EXPECT_GT(degraded.stats.objects_dropped, 0u);
}

TEST(FaultInjectionStressTest, ManySeedsPreserveInvariants) {
  // Fault-free baseline: the survivor set of any degraded run must be a
  // subset of these matches (drops remove objects, never add or alter them —
  // checksums stop corrupted payloads from reaching the filter).
  auto clean_built = BuildGenealogyDatabase(StressOptions());
  ASSERT_TRUE(clean_built.ok());
  auto clean_db = std::move(clean_built).value();
  AssemblyOptions aopts;
  aopts.error_policy = ErrorPolicy::kSkipObject;
  RunOutcome baseline = RunPlan(clean_db.get(), aopts);
  ASSERT_TRUE(baseline.status.ok());
  std::set<Oid> clean_matches = AsSet(baseline.matches);

  uint64_t total_drops = 0;
  uint64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    GenealogyOptions options = StressOptions();
    options.faults = StressProfile(seed);
    auto built = BuildGenealogyDatabase(options);
    ASSERT_TRUE(built.ok());
    auto db = std::move(built).value();

    RunOutcome run = RunPlan(db.get(), aopts);
    ASSERT_TRUE(run.status.ok())
        << "seed " << seed << ": " << run.status.ToString();

    EXPECT_EQ(run.stats.complex_admitted,
              run.stats.complex_emitted + run.stats.complex_aborted +
                  run.stats.objects_dropped)
        << "seed " << seed;
    EXPECT_EQ(run.stats.objects_dropped, run.drops.size()) << "seed " << seed;
    for (Oid oid : run.matches) {
      EXPECT_TRUE(clean_matches.contains(oid))
          << "seed " << seed << " emitted non-baseline object " << oid;
    }
    std::set<Oid> dropped = AsSet(run.drops);
    for (Oid oid : run.matches) {
      EXPECT_FALSE(dropped.contains(oid))
          << "seed " << seed << " both emitted and dropped " << oid;
    }
    total_drops += run.stats.objects_dropped;
    total_faults += run.faults.total();
  }
  // Across six seeds the profile must actually have exercised degraded mode.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_drops, 0u);
}

}  // namespace
}  // namespace cobra
