// Randomized differential testing of the assembly operator.
//
// For a batch of seeds: generate a random acyclic object graph (random
// fan-out, random cross-references creating shared components, random
// physical placement), derive a random template over it (random subset of
// reference slots, random sharing annotations on genuinely shared levels,
// random predicates), then check that the operator — under every scheduler
// and several window sizes — emits exactly the complex objects the naive
// object-at-a-time oracle produces, with identical reachable OID sets.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "buffer/buffer_manager.h"
#include "common/rng.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

struct FuzzWorld {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<HashDirectory> directory;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AssemblyTemplate> tmpl;
  std::vector<Oid> roots;
};

// Builds a random layered DAG: `depth` layers; layer 0 objects are roots;
// each object references a random subset of next-layer objects.  Objects in
// deeper layers may be referenced by several parents (sharing).
void BuildFuzzWorld(uint64_t seed, FuzzWorld* out) {
  Rng rng(seed);
  FuzzWorld& world = *out;
  world.disk = std::make_unique<SimulatedDisk>();
  world.buffer = std::make_unique<BufferManager>(
      world.disk.get(), BufferOptions{.num_frames = 4096});
  world.directory = std::make_unique<HashDirectory>();
  world.store = std::make_unique<ObjectStore>(world.buffer.get(),
                                              world.directory.get());

  const int depth = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  const size_t num_roots = 5 + rng.NextBounded(15);
  const size_t layer_width = 8 + rng.NextBounded(20);
  const int refs_per_object = 1 + static_cast<int>(rng.NextBounded(3));

  // Layer sizes: roots, then shared pools.
  std::vector<std::vector<Oid>> layers(static_cast<size_t>(depth) + 1);

  // Template: one node per layer; layer l node follows ref slots
  // 0..refs_per_object-1 into layer l+1.  Deeper layers marked shared with
  // probability 1/2; random predicates with probability 1/3.
  world.tmpl = std::make_unique<AssemblyTemplate>();
  std::vector<TemplateNode*> nodes;
  for (int l = 0; l <= depth; ++l) {
    TemplateNode* node = world.tmpl->AddNode("L" + std::to_string(l));
    node->expected_type = static_cast<TypeId>(l + 1);
    if (l > 0 && rng.NextBool(0.5)) {
      node->shared = true;
    }
    if (rng.NextBool(0.33)) {
      int32_t threshold = static_cast<int32_t>(rng.NextBounded(100));
      node->predicate = [threshold](const ObjectData& obj) {
        return obj.fields[0] >= threshold;
      };
      node->selectivity = (100.0 - threshold) / 100.0;
    }
    nodes.push_back(node);
  }
  for (int l = 0; l < depth; ++l) {
    for (int r = 0; r < refs_per_object; ++r) {
      nodes[static_cast<size_t>(l)]->children.push_back(
          {r, nodes[static_cast<size_t>(l) + 1]});
    }
  }
  world.tmpl->SetRoot(nodes[0]);

  // Objects, bottom layer first so references exist.
  size_t file_pages = 512;
  HeapFile file(world.buffer.get(), 0, file_pages);
  for (int l = depth; l >= 0; --l) {
    size_t count = l == 0 ? num_roots : layer_width;
    for (size_t i = 0; i < count; ++i) {
      ObjectData obj;
      obj.oid = world.store->AllocateOid();
      obj.type_id = static_cast<TypeId>(l + 1);
      obj.fields = {static_cast<int32_t>(rng.NextBounded(100)),
                    static_cast<int32_t>(l), static_cast<int32_t>(i), 0};
      obj.refs.assign(8, kInvalidOid);
      if (l < depth) {
        const auto& below = layers[static_cast<size_t>(l) + 1];
        for (int r = 0; r < refs_per_object; ++r) {
          // Some references are deliberately absent.
          if (rng.NextBool(0.15)) continue;
          obj.refs[r] = below[rng.NextBounded(below.size())];
        }
      }
      size_t page = rng.NextBounded(file_pages - 1);
      // Retry placement on full pages (random placement, like the
      // unclustered generator).
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto stored = world.store->InsertAtPage(obj, &file, page);
        if (stored.ok()) break;
        ASSERT_TRUE(stored.status().IsResourceExhausted())
            << stored.status().ToString();
        page = (page + 1) % (file_pages - 1);
      }
      layers[static_cast<size_t>(l)].push_back(obj.oid);
    }
  }
  world.roots = layers[0];
}

class FuzzAssemblyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzAssemblyTest, OperatorMatchesNaiveOracle) {
  SCOPED_TRACE("seed=" + std::to_string(GetParam()));
  FuzzWorld world;
  BuildFuzzWorld(GetParam(), &world);
  ASSERT_TRUE(world.tmpl->Validate().ok());

  NaiveAssembler naive(world.store.get(), world.tmpl.get());
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : world.roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    if (*obj == nullptr) continue;  // predicate-rejected
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
  }

  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kBreadthFirst,
                    SchedulerKind::kElevator}) {
    for (size_t window : {size_t{1}, size_t{4}, size_t{64}}) {
      for (bool sharing_stats : {true, false}) {
        std::vector<Row> rows;
        for (Oid oid : world.roots) rows.push_back(Row{Value::Ref(oid)});
        AssemblyOptions options;
        options.scheduler = kind;
        options.window_size = window;
        options.use_sharing_statistics = sharing_stats;
        options.prioritize_predicates = (GetParam() % 2) == 0;
        AssemblyOperator op(std::make_unique<VectorScan>(std::move(rows)),
                            world.tmpl.get(), world.store.get(), options);
        ASSERT_TRUE(op.Open().ok());
        std::map<Oid, std::set<Oid>> got;
        exec::RowBatch batch;
        for (;;) {
          auto n = op.NextBatch(&batch);
          ASSERT_TRUE(n.ok())
              << n.status().ToString() << " scheduler "
              << SchedulerKindName(kind) << " window " << window;
          if (*n == 0) break;
          for (size_t i = 0; i < *n; ++i) {
            const AssembledObject* obj = batch[i][0].AsObject();
            auto oids = CollectOids(obj);
            got[obj->oid] = std::set<Oid>(oids.begin(), oids.end());
          }
        }
        ASSERT_TRUE(op.Close().ok());
        EXPECT_EQ(got, expected)
            << "seed " << GetParam() << " scheduler "
            << SchedulerKindName(kind) << " window " << window
            << " sharing_stats " << sharing_stats;
      }
    }
  }
}

// Seeds are pinned (never derived from time or run order) and embedded in
// the test name, so a failing ctest line like Seeds/FuzzAssemblyTest.
// OperatorMatchesNaiveOracle/Seed7 reproduces the exact world as-is.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAssemblyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cobra
