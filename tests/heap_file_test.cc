#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "storage/disk.h"

namespace cobra {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string ToString(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 64}),
        file_(&buffer_, /*first_page=*/10, /*max_pages=*/20) {}
  SimulatedDisk disk_;
  BufferManager buffer_;
  HeapFile file_;
};

TEST_F(HeapFileTest, AppendAndGet) {
  auto id = file_.Append(Bytes("record one"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->page, 10u);
  auto got = file_.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "record one");
}

TEST_F(HeapFileTest, AppendSpillsToNextPage) {
  std::vector<std::byte> rec(400, std::byte{1});
  std::vector<RecordId> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = file_.Append(rec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_GT(ids.back().page, ids.front().page);
  EXPECT_GE(file_.pages_used(), 2u);
  EXPECT_EQ(file_.record_count(), 5u);
}

TEST_F(HeapFileTest, ExtentExhaustion) {
  std::vector<std::byte> rec(900, std::byte{2});  // one record per page
  for (size_t i = 0; i < file_.max_pages(); ++i) {
    ASSERT_TRUE(file_.Append(rec).ok());
  }
  EXPECT_TRUE(file_.Append(rec).status().IsResourceExhausted());
}

TEST_F(HeapFileTest, InsertAtPageControlsPlacement) {
  auto id = file_.InsertAtPage(7, Bytes("placed"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->page, 17u);
  EXPECT_EQ(ToString(*file_.Get(*id)), "placed");
}

TEST_F(HeapFileTest, InsertBeyondExtentRejected) {
  EXPECT_TRUE(file_.InsertAtPage(20, Bytes("x")).status().IsOutOfRange());
}

TEST_F(HeapFileTest, InsertAtFullPageIsResourceExhausted) {
  std::vector<std::byte> big(900, std::byte{3});
  ASSERT_TRUE(file_.InsertAtPage(0, big).ok());
  EXPECT_TRUE(
      file_.InsertAtPage(0, big).status().IsResourceExhausted());
}

TEST_F(HeapFileTest, GetOutsideExtentRejected) {
  EXPECT_TRUE(
      file_.Get(RecordId{5, 0}).status().IsOutOfRange());
}

TEST_F(HeapFileTest, DeleteRemovesRecord) {
  auto id = file_.Append(Bytes("doomed"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(file_.Delete(*id).ok());
  EXPECT_TRUE(file_.Get(*id).status().IsNotFound());
  EXPECT_EQ(file_.record_count(), 0u);
}

TEST_F(HeapFileTest, UpdateSameLength) {
  auto id = file_.Append(Bytes("abcdef"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(file_.Update(*id, Bytes("uvwxyz")).ok());
  EXPECT_EQ(ToString(*file_.Get(*id)), "uvwxyz");
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRecordsInOrder) {
  std::vector<std::string> payloads = {"a", "bb", "ccc", "dddd", "eeeee"};
  std::vector<RecordId> ids;
  for (const auto& p : payloads) {
    auto id = file_.Append(Bytes(p));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(file_.Delete(ids[1]).ok());

  auto cursor = file_.Scan();
  std::vector<std::string> seen;
  RecordId id;
  std::vector<std::byte> rec;
  for (;;) {
    auto has = cursor.Next(&id, &rec);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    seen.push_back(ToString(rec));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "ccc", "dddd", "eeeee"}));
}

TEST_F(HeapFileTest, ScanSkipsHolesInSparseExtent) {
  ASSERT_TRUE(file_.InsertAtPage(0, Bytes("front")).ok());
  ASSERT_TRUE(file_.InsertAtPage(9, Bytes("back")).ok());
  auto cursor = file_.Scan();
  std::vector<std::string> seen;
  RecordId id;
  std::vector<std::byte> rec;
  for (;;) {
    auto has = cursor.Next(&id, &rec);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    seen.push_back(ToString(rec));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"front", "back"}));
}

TEST_F(HeapFileTest, OpenReattachesToExistingData) {
  ASSERT_TRUE(file_.Append(Bytes("persisted1")).ok());
  ASSERT_TRUE(file_.Append(Bytes("persisted2")).ok());
  ASSERT_TRUE(buffer_.FlushAll().ok());

  auto reopened = HeapFile::Open(&buffer_, 10, 20);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->record_count(), 2u);
  EXPECT_EQ(reopened->pages_used(), 1u);
}

TEST_F(HeapFileTest, OpenEmptyExtent) {
  auto reopened = HeapFile::Open(&buffer_, 500, 4);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->record_count(), 0u);
  EXPECT_EQ(reopened->pages_used(), 0u);
}

TEST_F(HeapFileTest, PageAllocatorExtents) {
  PageAllocator alloc(100);
  EXPECT_EQ(alloc.Allocate(), 100u);
  EXPECT_EQ(alloc.AllocateExtent(10), 101u);
  EXPECT_EQ(alloc.Allocate(), 111u);
  EXPECT_EQ(alloc.next(), 112u);
}

TEST_F(HeapFileTest, RecordIdOrdering) {
  RecordId a{1, 2};
  RecordId b{1, 3};
  RecordId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RecordId{1, 2}));
  EXPECT_FALSE(RecordId{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST_F(HeapFileTest, ManySmallRecordsRoundTrip) {
  std::vector<RecordId> ids;
  for (int i = 0; i < 150; ++i) {
    std::string payload = "rec-" + std::to_string(i);
    auto id = file_.Append(Bytes(payload));
    ASSERT_TRUE(id.ok()) << i;
    ids.push_back(*id);
  }
  for (int i = 0; i < 150; ++i) {
    auto got = file_.Get(ids[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), "rec-" + std::to_string(i));
  }
  EXPECT_EQ(file_.record_count(), 150u);
}

}  // namespace
}  // namespace cobra
