#include <sstream>

#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace cobra {
namespace {

TEST(SeekHistogramTest, EmptyHistogram) {
  SeekHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
  EXPECT_EQ(histogram.Percentile(0.5), 0u);
}

TEST(SeekHistogramTest, BasicStats) {
  SeekHistogram histogram;
  histogram.Add(0);
  histogram.Add(1);
  histogram.Add(10);
  histogram.Add(100);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.total(), 111u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 111.0 / 4.0);
}

TEST(SeekHistogramTest, PercentilesAreBucketBounds) {
  SeekHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Add(0);
  for (int i = 0; i < 10; ++i) histogram.Add(1000);
  EXPECT_EQ(histogram.Percentile(0.5), 0u);
  EXPECT_EQ(histogram.Percentile(0.9), 0u);
  // The tail lands in the bucket containing 1000: [512, 1023].
  EXPECT_EQ(histogram.Percentile(0.99), 1023u);
  EXPECT_EQ(histogram.Percentile(1.0), 1023u);
}

TEST(SeekHistogramTest, FromReadTraceComputesDeltas) {
  // Head starts at 0: trace 5, 5, 15 -> distances 5, 0, 10.
  SeekHistogram histogram =
      SeekHistogram::FromReadTrace({5, 5, 15}, /*start=*/0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.total(), 15u);
  EXPECT_EQ(histogram.max(), 10u);
}

TEST(SeekHistogramTest, BackwardSeeksCounted) {
  SeekHistogram histogram =
      SeekHistogram::FromReadTrace({100, 0}, /*start=*/0);
  EXPECT_EQ(histogram.total(), 200u);
}

TEST(SeekHistogramTest, PrintShowsNonEmptyBucketsAndCumulative) {
  SeekHistogram histogram;
  histogram.Add(0);
  histogram.Add(3);
  histogram.Add(3);
  std::ostringstream os;
  histogram.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("seek distance"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);  // cumulative reaches 100
}

TEST(SeekHistogramTest, LargeDistances) {
  SeekHistogram histogram;
  histogram.Add(uint64_t{1} << 40);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.max(), uint64_t{1} << 40);
  EXPECT_GE(histogram.Percentile(1.0), uint64_t{1} << 40);
}

}  // namespace
}  // namespace cobra
