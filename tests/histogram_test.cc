#include <sstream>

#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace cobra {
namespace {

TEST(SeekHistogramTest, EmptyHistogram) {
  SeekHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
  EXPECT_EQ(histogram.Percentile(0.5), 0u);
}

TEST(SeekHistogramTest, BasicStats) {
  SeekHistogram histogram;
  histogram.Add(0);
  histogram.Add(1);
  histogram.Add(10);
  histogram.Add(100);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.total(), 111u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 111.0 / 4.0);
}

TEST(SeekHistogramTest, PercentilesAreBucketBounds) {
  SeekHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Add(0);
  for (int i = 0; i < 10; ++i) histogram.Add(1000);
  EXPECT_EQ(histogram.Percentile(0.5), 0u);
  EXPECT_EQ(histogram.Percentile(0.9), 0u);
  // The tail lands in the bucket containing 1000: [512, 1023].
  EXPECT_EQ(histogram.Percentile(0.99), 1023u);
  EXPECT_EQ(histogram.Percentile(1.0), 1023u);
}

TEST(SeekHistogramTest, FromReadTraceComputesDeltas) {
  // Head starts at 0: trace 5, 5, 15 -> distances 5, 0, 10.
  SeekHistogram histogram =
      SeekHistogram::FromReadTrace({5, 5, 15}, /*start=*/0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.total(), 15u);
  EXPECT_EQ(histogram.max(), 10u);
}

TEST(SeekHistogramTest, BackwardSeeksCounted) {
  SeekHistogram histogram =
      SeekHistogram::FromReadTrace({100, 0}, /*start=*/0);
  EXPECT_EQ(histogram.total(), 200u);
}

TEST(SeekHistogramTest, PrintShowsNonEmptyBucketsAndCumulative) {
  SeekHistogram histogram;
  histogram.Add(0);
  histogram.Add(3);
  histogram.Add(3);
  std::ostringstream os;
  histogram.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("seek distance"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);  // cumulative reaches 100
}

TEST(SeekHistogramTest, LargeDistances) {
  SeekHistogram histogram;
  histogram.Add(uint64_t{1} << 40);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.max(), uint64_t{1} << 40);
  EXPECT_GE(histogram.Percentile(1.0), uint64_t{1} << 40);
}

TEST(LogHistogramTest, QuantileShortcuts) {
  LogHistogram histogram;
  for (int i = 0; i < 95; ++i) histogram.Add(1);
  for (int i = 0; i < 5; ++i) histogram.Add(100);
  EXPECT_EQ(histogram.P50(), 1u);
  EXPECT_EQ(histogram.P95(), 1u);
  // The top 5% land in the bucket containing 100: [64, 127].
  EXPECT_EQ(histogram.P99(), 127u);
}

TEST(LogHistogramTest, QuantilesMonotone) {
  LogHistogram histogram;
  for (uint64_t v = 0; v < 1000; ++v) histogram.Add(v);
  EXPECT_LE(histogram.P50(), histogram.P95());
  EXPECT_LE(histogram.P95(), histogram.P99());
  EXPECT_LE(histogram.P99(), histogram.Percentile(1.0));
}

TEST(LogHistogramTest, MergeAccumulates) {
  LogHistogram a;
  LogHistogram b;
  a.Add(1);
  a.Add(2);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total(), 1003u);
  EXPECT_EQ(a.max(), 1000u);
  // Merging must be bucket-exact: a merged histogram equals one built from
  // the union of samples.
  LogHistogram direct;
  direct.Add(1);
  direct.Add(2);
  direct.Add(1000);
  for (size_t i = 0; i < direct.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), direct.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.Percentile(0.99), direct.Percentile(0.99));
}

TEST(LogHistogramTest, MergeEmptyIsNoop) {
  LogHistogram a;
  a.Add(7);
  LogHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.max(), 7u);
}

TEST(LogHistogramTest, EmptyHistogramAnswersZeroForEveryQuantile) {
  LogHistogram histogram;
  EXPECT_EQ(histogram.P50(), 0u);
  EXPECT_EQ(histogram.P95(), 0u);
  EXPECT_EQ(histogram.P99(), 0u);
  EXPECT_EQ(histogram.P999(), 0u);
  EXPECT_EQ(histogram.Percentile(1.0), 0u);
}

TEST(LogHistogramTest, SingleSampleAnswersEveryQuantileWithItsBucket) {
  LogHistogram histogram;
  histogram.Add(100);  // bucket [64, 127]
  EXPECT_EQ(histogram.P50(), 127u);
  EXPECT_EQ(histogram.P99(), 127u);
  EXPECT_EQ(histogram.P999(), 127u);
  EXPECT_EQ(histogram.Percentile(0.0), 127u);
  EXPECT_EQ(histogram.Percentile(1.0), 127u);
}

TEST(LogHistogramTest, P999ResolvesTheTail) {
  // 998 small samples and two huge ones: p99 stays small, p999 must reach
  // the outliers' bucket (threshold 999 > 998 small samples).
  LogHistogram histogram;
  for (int i = 0; i < 998; ++i) histogram.Add(1);
  histogram.Add(uint64_t{1} << 20);
  histogram.Add(uint64_t{1} << 20);
  EXPECT_EQ(histogram.P99(), 1u);
  EXPECT_GE(histogram.P999(), uint64_t{1} << 20);
  EXPECT_LE(histogram.P99(), histogram.P999());
}

TEST(LogHistogramTest, TopOverflowBucketHoldsExtremeValues) {
  // Values at and near 2^64 land in the last bucket, whose upper bound
  // saturates at UINT64_MAX instead of overflowing the shift.
  LogHistogram histogram;
  histogram.Add(UINT64_MAX);
  histogram.Add(uint64_t{1} << 63);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.max(), UINT64_MAX);
  EXPECT_EQ(histogram.Percentile(1.0), UINT64_MAX);
  size_t top = histogram.num_buckets() - 1;
  EXPECT_EQ(histogram.bucket_count(top), 2u);
  EXPECT_EQ(LogHistogram::BucketHi(top), UINT64_MAX);
  EXPECT_GE(LogHistogram::BucketHi(top), LogHistogram::BucketLo(top));
}

TEST(LogHistogramTest, MergePreservesTopBucket) {
  LogHistogram a;
  LogHistogram b;
  a.Add(UINT64_MAX);
  b.Add(UINT64_MAX);
  a.Merge(b);
  size_t top = a.num_buckets() - 1;
  EXPECT_EQ(a.bucket_count(top), 2u);
  EXPECT_EQ(a.max(), UINT64_MAX);
  EXPECT_EQ(a.count(), 2u);
}

TEST(LogHistogramTest, BucketBoundsBracketSamples) {
  LogHistogram histogram;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 8ull, 1023ull, 1024ull}) {
    histogram.Add(v);
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < histogram.num_buckets(); ++i) {
    seen += histogram.bucket_count(i);
    if (histogram.bucket_count(i) > 0) {
      EXPECT_LE(LogHistogram::BucketLo(i), LogHistogram::BucketHi(i));
    }
  }
  EXPECT_EQ(seen, histogram.count());
}

}  // namespace
}  // namespace cobra
