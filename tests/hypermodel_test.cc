#include <map>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "exec/scan.h"
#include "workload/hypermodel.h"

namespace cobra {
namespace {

TEST(HyperModelTest, NodeCountFormula) {
  EXPECT_EQ(HyperModelNodeCount(1, 5), 1u);
  EXPECT_EQ(HyperModelNodeCount(2, 5), 6u);
  EXPECT_EQ(HyperModelNodeCount(5, 5), 781u);
  EXPECT_EQ(HyperModelNodeCount(3, 2), 7u);
}

TEST(HyperModelTest, BuildProperties) {
  HyperModelOptions options;
  options.levels = 4;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->total_nodes, HyperModelNodeCount(4, 5));
  EXPECT_EQ((*db)->nodes.size(), (*db)->total_nodes);
  EXPECT_TRUE((*db)->closure_tmpl.Validate().ok());
  EXPECT_TRUE((*db)->closure_tmpl.IsRecursive());
}

TEST(HyperModelTest, StructureIsAcyclicAndLeafTargeted) {
  HyperModelOptions options;
  options.levels = 4;
  options.refers_to_fraction = 0.8;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok());
  const size_t n = (*db)->total_nodes;
  // Nodes before the leaf level (levels - 1 = 3 full levels).
  const size_t first_leaf = HyperModelNodeCount(3, 5);
  std::unordered_set<Oid> leaves((*db)->nodes.begin() +
                                     static_cast<long>(first_leaf),
                                 (*db)->nodes.end());
  size_t refers = 0;
  for (size_t i = 0; i < n; ++i) {
    auto node = (*db)->store->Get((*db)->nodes[i]);
    ASSERT_TRUE(node.ok());
    EXPECT_EQ(node->fields[kHyperSeqField], static_cast<int32_t>(i));
    Oid target = node->refs[options.fanout];
    if (target != kInvalidOid) {
      ++refers;
      EXPECT_TRUE(leaves.contains(target));
      EXPECT_FALSE(leaves.contains((*db)->nodes[i]))
          << "leaves must not carry refersTo";
    }
  }
  EXPECT_GT(refers, 0u);
}

TEST(HyperModelTest, RootClosureCoversWholeHierarchy) {
  HyperModelOptions options;
  options.levels = 4;
  options.refers_to_fraction = 0.5;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok());
  NaiveAssembler naive((*db)->store.get(), &(*db)->closure_tmpl);
  ObjectArena arena;
  auto closure = naive.AssembleOne((*db)->root, &arena);
  ASSERT_TRUE(closure.ok());
  ASSERT_NE(*closure, nullptr);
  // refersTo only adds edges to nodes already in the hierarchy, so the
  // closure of the root is exactly the whole hierarchy.
  EXPECT_EQ(CountAssembled(*closure), (*db)->total_nodes);
}

TEST(HyperModelTest, OperatorClosureMatchesNaivePerNode) {
  HyperModelOptions options;
  options.levels = 4;
  options.refers_to_fraction = 0.5;
  options.seed = 5;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok());

  // Closures of all level-1 nodes (the root's children): realistic
  // multi-complex-object workload with shared leaves across closures.
  std::vector<Oid> roots((*db)->nodes.begin() + 1, (*db)->nodes.begin() + 6);

  NaiveAssembler naive((*db)->store.get(), &(*db)->closure_tmpl);
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
  }

  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kElevator}) {
    ASSERT_TRUE((*db)->ColdRestart().ok());
    std::vector<exec::Row> rows;
    for (Oid oid : roots) rows.push_back(exec::Row{exec::Value::Ref(oid)});
    AssemblyOperator op(std::make_unique<exec::VectorScan>(std::move(rows)),
                        &(*db)->closure_tmpl, (*db)->store.get(),
                        AssemblyOptions{.window_size = 5, .scheduler = kind});
    ASSERT_TRUE(op.Open().ok());
    exec::RowBatch batch;
    size_t emitted = 0;
    for (;;) {
      auto n = op.NextBatch(&batch);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      if (*n == 0) break;
      for (size_t i = 0; i < *n; ++i) {
        const AssembledObject* obj = batch[i][0].AsObject();
        auto oids = CollectOids(obj);
        EXPECT_EQ((std::set<Oid>(oids.begin(), oids.end())),
                  expected[obj->oid])
            << "root " << obj->oid << " scheduler "
            << SchedulerKindName(kind);
        ++emitted;
      }
    }
    EXPECT_EQ(emitted, roots.size());
    // Cross-referenced leaves shared across the window are deduped.
    EXPECT_GT(op.stats().shared_hits, 0u);
    ASSERT_TRUE(op.Close().ok());
  }
}

TEST(HyperModelTest, AttributeSumStableAcrossSchedulers) {
  HyperModelOptions options;
  options.levels = 4;
  options.seed = 9;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok());

  auto sum_with = [&](SchedulerKind kind) -> int64_t {
    EXPECT_TRUE((*db)->ColdRestart().ok());
    std::vector<exec::Row> rows = {exec::Row{exec::Value::Ref((*db)->root)}};
    AssemblyOperator op(std::make_unique<exec::VectorScan>(std::move(rows)),
                        &(*db)->closure_tmpl, (*db)->store.get(),
                        AssemblyOptions{.window_size = 1, .scheduler = kind});
    EXPECT_TRUE(op.Open().ok());
    exec::RowBatch batch;
    auto n = op.NextBatch(&batch);
    EXPECT_TRUE(n.ok() && *n == 1u);
    int64_t sum = SumField(batch[0][0].AsObject(), kHyperHundredField);
    EXPECT_TRUE(op.Close().ok());
    return sum;
  };
  int64_t df = sum_with(SchedulerKind::kDepthFirst);
  int64_t bf = sum_with(SchedulerKind::kBreadthFirst);
  int64_t el = sum_with(SchedulerKind::kElevator);
  EXPECT_EQ(df, bf);
  EXPECT_EQ(bf, el);
  EXPECT_GT(df, 0);
}

TEST(HyperModelTest, RejectsBadOptions) {
  HyperModelOptions options;
  options.levels = 0;
  EXPECT_TRUE(BuildHyperModelDatabase(options).status().IsInvalidArgument());
  options.levels = 3;
  options.fanout = 8;  // slot fanout must stay within the 8 ref slots
  EXPECT_TRUE(BuildHyperModelDatabase(options).status().IsInvalidArgument());
}

TEST(HyperModelTest, DeterministicInSeed) {
  HyperModelOptions options;
  options.levels = 3;
  options.seed = 123;
  auto a = BuildHyperModelDatabase(options);
  auto b = BuildHyperModelDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < (*a)->nodes.size(); ++i) {
    auto oa = (*a)->store->Get((*a)->nodes[i]);
    auto ob = (*b)->store->Get((*b)->nodes[i]);
    ASSERT_TRUE(oa.ok() && ob.ok());
    EXPECT_EQ(*oa, *ob);
  }
}

}  // namespace
}  // namespace cobra
