// End-to-end property tests over the generated benchmark databases:
// for every clustering policy, scheduler, and window size the assembly
// operator must produce exactly what naive object-at-a-time traversal
// produces, and the paper's headline performance relations must hold.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "exec/scan.h"
#include "workload/acob.h"
#include "workload/cad.h"
#include "stats/metrics.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

std::unique_ptr<VectorScan> RootScan(const std::vector<Oid>& roots) {
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  return std::make_unique<VectorScan>(std::move(rows));
}

// Runs an assembly pass over a cold-restarted database; returns the per-root
// reachable OID sets and fills metrics.
struct AssemblyOutcome {
  std::map<Oid, std::set<Oid>> per_root;
  AssemblyStats stats;
  DiskStats disk;
};

Result<AssemblyOutcome> RunAcobAssembly(AcobDatabase* db,
                                        AssemblyOptions options) {
  COBRA_RETURN_IF_ERROR(db->ColdRestart());
  AssemblyOperator op(RootScan(db->roots), &db->tmpl, db->store.get(),
                      options);
  COBRA_RETURN_IF_ERROR(op.Open());
  AssemblyOutcome outcome;
  exec::RowBatch batch;
  for (;;) {
    COBRA_ASSIGN_OR_RETURN(size_t n, op.NextBatch(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      const AssembledObject* obj = batch[i][0].AsObject();
      auto oids = CollectOids(obj);
      outcome.per_root[obj->oid] = std::set<Oid>(oids.begin(), oids.end());
    }
  }
  outcome.stats = op.stats();
  outcome.disk = db->disk->stats();
  COBRA_RETURN_IF_ERROR(op.Close());
  return outcome;
}

struct SweepParam {
  Clustering clustering;
  SchedulerKind scheduler;
  size_t window;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = ClusteringName(info.param.clustering);
  name += "_";
  name += SchedulerKindName(info.param.scheduler);
  name += "_w" + std::to_string(info.param.window);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

class AssemblySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AssemblySweepTest, MatchesNaiveTraversal) {
  const SweepParam& param = GetParam();
  AcobOptions options;
  options.num_complex_objects = 60;
  options.clustering = param.clustering;
  options.seed = 1001;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    ASSERT_NE(*obj, nullptr);
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
    EXPECT_EQ(expected[root].size(), 7u);
  }

  AssemblyOptions aopts;
  aopts.scheduler = param.scheduler;
  aopts.window_size = param.window;
  auto outcome = RunAcobAssembly(db->get(), aopts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->per_root, expected);
  EXPECT_EQ(outcome->stats.complex_emitted, 60u);
  EXPECT_EQ(outcome->stats.complex_aborted, 0u);
  EXPECT_GT(outcome->disk.reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, AssemblySweepTest,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (Clustering c : {Clustering::kUnclustered, Clustering::kInterObject,
                           Clustering::kIntraObject}) {
        for (SchedulerKind s :
             {SchedulerKind::kDepthFirst, SchedulerKind::kBreadthFirst,
              SchedulerKind::kElevator}) {
          for (size_t w : {size_t{1}, size_t{8}, size_t{60}}) {
            params.push_back({c, s, w});
          }
        }
      }
      return params;
    }()),
    SweepName);

class SharingSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SharingSweepTest, SharingPreservesResults) {
  const SweepParam& param = GetParam();
  AcobOptions options;
  options.num_complex_objects = 50;
  options.clustering = param.clustering;
  options.sharing = 0.2;
  options.seed = 77;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
  }

  for (bool use_stats : {true, false}) {
    AssemblyOptions aopts;
    aopts.scheduler = param.scheduler;
    aopts.window_size = param.window;
    aopts.use_sharing_statistics = use_stats;
    auto outcome = RunAcobAssembly(db->get(), aopts);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->per_root, expected) << "use_stats=" << use_stats;
    if (use_stats && param.window > 1) {
      EXPECT_GT(outcome->stats.shared_hits, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SharingConfigurations, SharingSweepTest,
    ::testing::ValuesIn(std::vector<SweepParam>{
        {Clustering::kInterObject, SchedulerKind::kDepthFirst, 1},
        {Clustering::kInterObject, SchedulerKind::kElevator, 25},
        {Clustering::kUnclustered, SchedulerKind::kElevator, 50},
        {Clustering::kIntraObject, SchedulerKind::kBreadthFirst, 8},
    }),
    SweepName);

TEST(AssemblyPerformanceTest, ElevatorNeverWorseThanDepthFirstAtWindow50) {
  // The paper's Fig. 13 relation: with a wide window, elevator scheduling
  // has the smallest average seek distance under every clustering policy.
  for (Clustering clustering :
       {Clustering::kUnclustered, Clustering::kInterObject,
        Clustering::kIntraObject}) {
    AcobOptions options;
    options.num_complex_objects = 300;
    options.clustering = clustering;
    options.seed = 4242;
    auto db = BuildAcobDatabase(options);
    ASSERT_TRUE(db.ok());

    AssemblyOptions df;
    df.scheduler = SchedulerKind::kDepthFirst;
    df.window_size = 50;
    auto df_out = RunAcobAssembly(db->get(), df);
    ASSERT_TRUE(df_out.ok());

    AssemblyOptions el;
    el.scheduler = SchedulerKind::kElevator;
    el.window_size = 50;
    auto el_out = RunAcobAssembly(db->get(), el);
    ASSERT_TRUE(el_out.ok());

    EXPECT_LE(el_out->disk.AvgSeekPerRead(),
              df_out->disk.AvgSeekPerRead() * 1.02)
        << ClusteringName(clustering);
  }
}

TEST(AssemblyPerformanceTest, WiderWindowReducesSeeksOnUnclusteredData) {
  // Fig. 14's shape: growing the window reduces average seek distance
  // (diminishing returns are benchmarked, here we assert monotone-ish).
  AcobOptions options;
  options.num_complex_objects = 300;
  options.clustering = Clustering::kUnclustered;
  options.seed = 31;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  auto seek_at = [&](size_t window) {
    AssemblyOptions aopts;
    aopts.scheduler = SchedulerKind::kElevator;
    aopts.window_size = window;
    auto out = RunAcobAssembly(db->get(), aopts);
    EXPECT_TRUE(out.ok());
    return out->disk.AvgSeekPerRead();
  };
  double w1 = seek_at(1);
  double w50 = seek_at(50);
  EXPECT_LT(w50, w1 * 0.5) << "w1=" << w1 << " w50=" << w50;
}

TEST(AssemblyPerformanceTest, SelectiveAssemblySkipsWork) {
  // §6.5: predicates abort assembly early; with a selective predicate the
  // operator fetches far fewer objects than full assembly.
  AcobOptions options;
  options.num_complex_objects = 200;
  options.clustering = Clustering::kUnclustered;
  options.seed = 8;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  auto run = [&](double selectivity) -> AssemblyOutcome {
    // Predicate on component B (position 1): field0 uniform in [0,10000).
    TemplateNode* b = (*db)->nodes[1];
    int32_t threshold = static_cast<int32_t>(10000 * selectivity);
    if (selectivity >= 1.0) {
      b->predicate = nullptr;
      b->selectivity = 1.0;
    } else {
      b->predicate = [threshold](const ObjectData& obj) {
        return obj.fields[0] < threshold;
      };
      b->selectivity = selectivity;
    }
    AssemblyOptions aopts;
    aopts.window_size = 50;
    auto out = RunAcobAssembly(db->get(), aopts);
    EXPECT_TRUE(out.ok());
    return *out;
  };

  AssemblyOutcome full = run(1.0);
  AssemblyOutcome selective = run(0.2);
  EXPECT_EQ(full.stats.complex_emitted, 200u);
  EXPECT_LT(selective.stats.complex_emitted, 120u);
  EXPECT_GT(selective.stats.complex_aborted, 80u);
  // The elevator may fetch a same-page sibling before the predicate column,
  // so the saving is a little below the analytic bound; 60% is robust.
  EXPECT_LT(static_cast<double>(selective.stats.objects_fetched),
            static_cast<double>(full.stats.objects_fetched) * 0.6);
  // Matches naive selective traversal.
  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  auto naive_set = naive.AssembleAll((*db)->roots, &arena);
  ASSERT_TRUE(naive_set.ok());
  EXPECT_EQ(naive_set->size(), selective.stats.complex_emitted);
  // Reset the template predicate for other tests sharing the database.
  (*db)->nodes[1]->predicate = nullptr;
  (*db)->nodes[1]->selectivity = 1.0;
}

TEST(AssemblyPerformanceTest, BufferLimitedAssemblyStaysCorrect) {
  // §7: with a tiny buffer pool, pages are re-read but results must not
  // change.
  AcobOptions options;
  options.num_complex_objects = 80;
  options.clustering = Clustering::kUnclustered;
  options.buffer_frames = 8;  // tiny
  options.seed = 90;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
  }

  AssemblyOptions aopts;
  aopts.window_size = 40;
  auto out = RunAcobAssembly(db->get(), aopts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->per_root, expected);
}

TEST(AssemblyPerformanceTest, CadRecursiveAssemblyMatchesNaive) {
  CadOptions options;
  options.num_assemblies = 40;
  options.depth = 3;
  options.fanout = 2;
  auto db = BuildCadDatabase(options);
  ASSERT_TRUE(db.ok());

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  std::map<Oid, int64_t> expected_cost;
  std::map<Oid, size_t> expected_count;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    expected_cost[root] = SumField(*obj, kPartCostField);
    expected_count[root] = CountAssembled(*obj);
  }

  AssemblyOperator op(RootScan((*db)->roots), &(*db)->tmpl,
                      (*db)->store.get(),
                      AssemblyOptions{.window_size = 20});
  ASSERT_TRUE(op.Open().ok());
  exec::RowBatch batch;
  size_t emitted = 0;
  for (;;) {
    auto n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      const AssembledObject* obj = batch[i][0].AsObject();
      EXPECT_EQ(SumField(obj, kPartCostField), expected_cost[obj->oid]);
      EXPECT_EQ(CountAssembled(obj), expected_count[obj->oid]);
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, 40u);
  // Standard parts dedup through the resident map.
  EXPECT_GT(op.stats().shared_hits, 0u);
  ASSERT_TRUE(op.Close().ok());
}

TEST(MetricsTest, TablePrinterAlignsAndCsv) {
  TablePrinter table({"label", "value"});
  table.AddRow({"alpha", "1.5"});
  table.AddRow({"long-label-here", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("label"), std::string::npos);
  EXPECT_NE(text.find("long-label-here"), std::string::npos);
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_NE(csv.str().find("alpha,1.5"), std::string::npos);
}

TEST(MetricsTest, FmtHelpers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtInt(42), "42");
}

}  // namespace
}  // namespace cobra
