#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "stats/metrics.h"
#include "storage/disk.h"

namespace cobra {
namespace {

TEST(CsvEscapeTest, PlainCellsPassThrough) {
  EXPECT_EQ(CsvEscape("elevator"), "elevator");
  EXPECT_EQ(CsvEscape("12.5"), "12.5");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, CommasQuoted) {
  EXPECT_EQ(CsvEscape("elevator, W=50"), "\"elevator, W=50\"");
}

TEST(CsvEscapeTest, EmbeddedQuotesDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlinesQuoted) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvEscape("a\rb"), "\"a\rb\"");
}

TEST(TablePrinterTest, PrintCsvEscapesLabelCells) {
  TablePrinter table({"configuration", "avg seek"});
  table.AddRow({"elevator, W=50", "12.5"});
  std::ostringstream os;
  table.PrintCsv(os);
  std::string csv = os.str();
  // The label cell must be quoted so the row still has two columns.
  EXPECT_NE(csv.find("\"elevator, W=50\",12.5"), std::string::npos);
  // Header row is untouched (no specials).
  EXPECT_NE(csv.find("configuration,avg seek"), std::string::npos);
}

TEST(DiskStatsTest, AvgSeekPerWrite) {
  DiskStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgSeekPerWrite(), 0.0);  // no writes: no div-by-0
  stats.writes = 4;
  stats.write_seek_pages = 100;
  EXPECT_DOUBLE_EQ(stats.AvgSeekPerWrite(), 25.0);
}

TEST(DiskStatsTest, WriteSeeksTracked) {
  SimulatedDisk disk;
  std::vector<std::byte> page(disk.page_size());
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  ASSERT_TRUE(disk.WritePage(100, page.data()).ok());  // head 0 -> seek 100
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().write_seek_pages, 100u);
  EXPECT_DOUBLE_EQ(disk.stats().AvgSeekPerWrite(), 50.0);
}

TEST(RunMetricsTest, AvgWriteSeekSurfaced) {
  RunMetrics metrics;
  metrics.disk.writes = 2;
  metrics.disk.write_seek_pages = 30;
  EXPECT_DOUBLE_EQ(metrics.avg_write_seek(), 15.0);
}

TEST(JsonRoundTripTest, ScalarsAndNesting) {
  using obs::JsonValue;
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", "elevator, \"W\"=50\n");
  doc.Set("count", 42);
  doc.Set("ratio", 2.5);
  doc.Set("flag", true);
  doc.Set("nothing", JsonValue());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append("two");
  doc.Set("list", std::move(arr));

  auto parsed = JsonValue::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "elevator, \"W\"=50\n");
  EXPECT_EQ(parsed->Find("count")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(parsed->Find("ratio")->AsDouble(), 2.5);
  EXPECT_TRUE(parsed->Find("flag")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  ASSERT_EQ(parsed->Find("list")->size(), 2u);
  EXPECT_EQ(parsed->Find("list")->AsArray()[0].AsInt(), 1);
  EXPECT_EQ(parsed->Find("list")->AsArray()[1].AsString(), "two");
}

TEST(JsonRoundTripTest, CompactAndPrettyAgree) {
  using obs::JsonValue;
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("a", 1);
  JsonValue inner = JsonValue::MakeObject();
  inner.Set("b", -3);
  doc.Set("inner", std::move(inner));
  auto compact = JsonValue::Parse(doc.Dump());
  auto pretty = JsonValue::Parse(doc.Dump(2));
  ASSERT_TRUE(compact.ok());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(compact->Dump(), pretty->Dump());
}

TEST(JsonRoundTripTest, ParserRejectsGarbage) {
  using obs::JsonValue;
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2] trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a': 1}").ok());
}

}  // namespace
}  // namespace cobra
