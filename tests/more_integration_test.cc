// Cross-module integration beyond the main sweeps: assembly over a
// disk-resident (B-tree) OID directory, schema-derived templates driving
// the operator, randomized scheduler properties, and OID-range options.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "assembly/naive.h"
#include "assembly/scheduler.h"
#include "buffer/buffer_manager.h"
#include "common/rng.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "index/btree.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "object/schema.h"
#include "storage/disk.h"
#include "workload/acob.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

TEST(BTreeDirectoryAssemblyTest, AssemblyWorksWithDiskResidentDirectory) {
  // The directory itself lives on the same disk as the data: Locate() costs
  // buffer traffic (and possibly I/O), exactly like a real OID index.  The
  // operator must still produce correct results.
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 512});
  PageAllocator allocator;
  // Data extent first, then the B-tree grows behind it.
  PageId data_first = allocator.AllocateExtent(64);
  HeapFile file(&buffer, data_first, 64);
  auto tree = BTree::Create(&buffer, &allocator);
  ASSERT_TRUE(tree.ok());
  BTreeDirectory directory(&tree.value());
  ObjectStore store(&buffer, &directory);

  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->expected_type = 1;
  leaf->expected_type = 2;
  root->children.push_back({0, leaf});
  tmpl.SetRoot(root);

  std::vector<Oid> roots;
  for (int i = 0; i < 40; ++i) {
    ObjectData leaf_obj;
    leaf_obj.type_id = 2;
    leaf_obj.fields = {i * 10};
    leaf_obj.refs.assign(8, kInvalidOid);
    auto leaf_oid = store.Insert(leaf_obj, &file);
    ASSERT_TRUE(leaf_oid.ok());
    ObjectData root_obj;
    root_obj.type_id = 1;
    root_obj.fields = {i};
    root_obj.refs.assign(8, kInvalidOid);
    root_obj.refs[0] = *leaf_oid;
    auto root_oid = store.Insert(root_obj, &file);
    ASSERT_TRUE(root_oid.ok());
    roots.push_back(*root_oid);
  }

  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(std::move(rows)), &tmpl,
                      &store, AssemblyOptions{.window_size = 10});
  ASSERT_TRUE(op.Open().ok());
  exec::RowBatch batch;
  size_t emitted = 0;
  for (;;) {
    auto n = op.NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      const AssembledObject* obj = batch[i][0].AsObject();
      ASSERT_NE(obj->children[0], nullptr);
      EXPECT_EQ(obj->children[0]->fields[0], obj->fields[0] * 10);
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, 40u);
  ASSERT_TRUE(op.Close().ok());
}

TEST(SchemaDrivenAssemblyTest, CatalogTemplateDrivesOperator) {
  TypeCatalog catalog;
  ASSERT_TRUE(catalog.DefineType("Leaf", {"v"}, {}).ok());
  ASSERT_TRUE(catalog
                  .DefineType("Node", {"v"},
                              {{"left", "Leaf", false},
                               {"right", "Leaf", true}})
                  .ok());
  auto tmpl = catalog.BuildTemplate("Node", {"left", "right"});
  ASSERT_TRUE(tmpl.ok());

  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 128});
  HashDirectory directory;
  ObjectStore store(&buffer, &directory);
  HeapFile file(&buffer, 0, 32);

  auto put = [&](Result<ObjectData> obj) {
    EXPECT_TRUE(obj.ok()) << obj.status().ToString();
    auto oid = store.Insert(*obj, &file);
    EXPECT_TRUE(oid.ok());
    return *oid;
  };
  Oid shared_right =
      put(ObjectBuilder(&catalog, "Leaf").Set("v", 99).Build());
  std::vector<Oid> roots;
  for (int i = 0; i < 3; ++i) {
    Oid left = put(ObjectBuilder(&catalog, "Leaf").Set("v", i).Build());
    roots.push_back(put(ObjectBuilder(&catalog, "Node")
                            .Set("v", i)
                            .SetRef("left", left)
                            .SetRef("right", shared_right)
                            .Build()));
  }

  exec::PlanBuilder builder =
      exec::PlanBuilder::FromOids(roots).Assemble(&*tmpl, &store,
                                                  AssemblyOptions{
                                                      .window_size = 3});
  AssemblyOperator* assembly = builder.last_assembly();
  auto plan = std::move(builder).Build();
  auto out = exec::DrainAll(plan.get());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);
  // The catalog marked `right` shared: all roots alias one object.
  const AssembledObject* first = (*out)[0][0].AsObject()->children[1];
  const AssembledObject* second = (*out)[1][0].AsObject()->children[1];
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->fields[0], 99);
  EXPECT_EQ(assembly->stats().shared_hits, 2u);
}

TEST(IndexDrivenAssemblyTest, BTreeRangeScanFeedsAssembly) {
  // §2: the operator "retains the advantages of using an index".  A
  // secondary index (field value -> root OID) selects the roots; the scan's
  // integer output is converted to references and assembled.
  AcobOptions options;
  options.num_complex_objects = 50;
  options.seed = 44;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  // Secondary index: key = complex index (fields[1] of the root), value =
  // root OID.  Built on a private disk; only the assembly below touches
  // the database disk.
  SimulatedDisk index_disk;
  BufferManager index_buffer(&index_disk, BufferOptions{.num_frames = 256});
  PageAllocator index_allocator;
  auto index = BTree::Create(&index_buffer, &index_allocator);
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < (*db)->roots.size(); ++i) {
    ASSERT_TRUE(index->Put(i, (*db)->roots[i]).ok());
  }

  // Plan: index range scan [10, 20) -> AsRef(value) -> assemble.
  auto plan = exec::PlanBuilder::ScanBTree(&index.value(), 10, 20)
                  .Project([] {
                    std::vector<exec::ExprPtr> exprs;
                    exprs.push_back(exec::AsRef(exec::Col(1)));
                    return exprs;
                  }())
                  .Assemble(&(*db)->tmpl, (*db)->store.get(),
                            AssemblyOptions{.window_size = 10})
                  .Build();
  auto out = exec::DrainAll(plan.get());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 10u);
  for (const Row& row : *out) {
    const AssembledObject* obj = row[0].AsObject();
    EXPECT_EQ(CountAssembled(obj), 7u);
    EXPECT_GE(obj->fields[1], 10);
    EXPECT_LT(obj->fields[1], 20);
  }
}

TEST(AsRefExprTest, Conversions) {
  using exec::AsRef;
  using exec::Col;
  Row row = {Value::Int(42), Value::Null(), Value::Ref(7),
             Value::Int(-1)};
  EXPECT_EQ(AsRef(Col(0))->Eval(row)->AsOid(), 42u);
  EXPECT_TRUE(AsRef(Col(1))->Eval(row)->is_null());
  EXPECT_EQ(AsRef(Col(2))->Eval(row)->AsOid(), 7u);
  EXPECT_TRUE(AsRef(Col(3))->Eval(row).status().IsInvalidArgument());
}

TEST(PlanDistinctTest, DistinctThroughBuilder) {
  std::vector<Row> rows = {{Value::Int(1)}, {Value::Int(1)},
                           {Value::Int(2)}};
  auto plan = exec::PlanBuilder::FromRows(std::move(rows)).Distinct().Build();
  auto out = exec::DrainAll(plan.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

// Randomized property: over uniformly random request pools, a full
// elevator drain never travels more than the FIFO or LIFO drains, and at
// most one sweep-reversal's overhead beyond the span itself.
class SchedulerDrainPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SchedulerDrainPropertyTest, ElevatorDrainIsShortest) {
  SCOPED_TRACE("seed=" + std::to_string(GetParam()));
  Rng rng(GetParam());
  size_t count = 20 + rng.NextBounded(200);
  PageId span = 100 + rng.NextBounded(5000);
  std::vector<PendingRef> batch;
  for (size_t i = 0; i < count; ++i) {
    PendingRef ref;
    ref.complex_id = 1;
    ref.oid = i + 1;
    ref.page = rng.NextBounded(span);
    batch.push_back(ref);
  }
  auto total_drain = [&](Scheduler* scheduler) {
    scheduler->AddBatch(batch, false);
    PageId head = 0;
    uint64_t total = 0;
    while (!scheduler->Empty()) {
      PendingRef ref = scheduler->Pop(head);
      total += ref.page > head ? ref.page - head : head - ref.page;
      head = ref.page;
    }
    return total;
  };
  ElevatorScheduler elevator;
  BreadthFirstScheduler fifo;
  DepthFirstScheduler lifo;
  uint64_t elevator_total = total_drain(&elevator);
  uint64_t fifo_total = total_drain(&fifo);
  uint64_t lifo_total = total_drain(&lifo);
  EXPECT_LE(elevator_total, fifo_total);
  EXPECT_LE(elevator_total, lifo_total);
  // A single monotone sweep from page 0 covers everything: elevator drain
  // of a static pool equals the largest requested page.
  PageId max_page = 0;
  for (const PendingRef& ref : batch) {
    max_page = std::max(max_page, ref.page);
  }
  EXPECT_EQ(elevator_total, max_page);
}

// Pinned seeds embedded in the test name: a failing ctest line names the
// exact seed (…/Seed107), no index-to-seed arithmetic needed to reproduce.
INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDrainPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{120}),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST(AcobFirstOidTest, RangesAreHonored) {
  AcobOptions options;
  options.num_complex_objects = 10;
  options.first_oid = 1000000;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  for (Oid root : (*db)->roots) {
    EXPECT_GE(root, 1000000u);
  }
  auto obj = (*db)->store->Get((*db)->roots[0]);
  ASSERT_TRUE(obj.ok());
  for (Oid ref : obj->refs) {
    if (ref != kInvalidOid) {
      EXPECT_GE(ref, 1000000u);
    }
  }
  options.first_oid = kInvalidOid;
  EXPECT_TRUE(BuildAcobDatabase(options).status().IsInvalidArgument());
}

TEST(DiskSaveErrorTest, UnwritablePathReported) {
  SimulatedDisk disk;
  std::vector<std::byte> page(disk.page_size());
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  EXPECT_FALSE(disk.SaveTo("/nonexistent-dir/sub/disk.img").ok());
}

}  // namespace
}  // namespace cobra
