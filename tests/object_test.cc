#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "index/btree.h"
#include "object/assembled_object.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

ObjectData PaperObject(Oid oid) {
  // The paper's shape: 4 integer fields + 8 reference fields.
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 3;
  obj.fields = {10, 20, 30, 40};
  obj.refs.assign(8, kInvalidOid);
  obj.refs[0] = 99;
  return obj;
}

TEST(ObjectCodecTest, PaperObjectIs96Bytes) {
  // "4 integer and 8 object reference fields equaling 96 bytes" (§6).
  EXPECT_EQ(PaperObject(1).SerializedSize(), 96u);
}

TEST(ObjectCodecTest, RoundTrip) {
  ObjectData obj = PaperObject(7);
  auto bytes = obj.Serialize();
  auto back = ObjectData::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
}

TEST(ObjectCodecTest, RoundTripVariableShape) {
  ObjectData obj;
  obj.oid = 12345;
  obj.type_id = 77;
  obj.fields = {1, -2, 3, -4, 5, -6, 7};
  obj.refs = {kInvalidOid, 2, 3};
  auto back = ObjectData::Deserialize(obj.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
}

TEST(ObjectCodecTest, EmptyFieldsAndRefs) {
  ObjectData obj;
  obj.oid = 1;
  obj.type_id = 2;
  auto back = ObjectData::Deserialize(obj.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
  EXPECT_EQ(obj.SerializedSize(), 16u);
}

TEST(ObjectCodecTest, TruncatedBufferIsCorruption) {
  auto bytes = PaperObject(1).Serialize();
  bytes.resize(20);
  EXPECT_TRUE(ObjectData::Deserialize(bytes).status().IsCorruption());
  bytes.resize(5);
  EXPECT_TRUE(ObjectData::Deserialize(bytes).status().IsCorruption());
}

TEST(ObjectCodecTest, TrailingGarbageIsCorruption) {
  auto bytes = PaperObject(1).Serialize();
  bytes.push_back(std::byte{0});
  EXPECT_TRUE(ObjectData::Deserialize(bytes).status().IsCorruption());
}

TEST(HashDirectoryTest, PutLookupRemove) {
  HashDirectory dir;
  ASSERT_TRUE(dir.Put(5, RecordId{10, 3}).ok());
  auto loc = dir.Lookup(5);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->page, 10u);
  EXPECT_EQ(loc->slot, 3u);
  EXPECT_EQ(dir.size(), 1u);
  ASSERT_TRUE(dir.Remove(5).ok());
  EXPECT_TRUE(dir.Lookup(5).status().IsNotFound());
  EXPECT_TRUE(dir.Remove(5).IsNotFound());
}

TEST(HashDirectoryTest, InvalidOidRejected) {
  HashDirectory dir;
  EXPECT_TRUE(dir.Put(kInvalidOid, RecordId{1, 1}).IsInvalidArgument());
}

TEST(HashDirectoryTest, PutMovesObject) {
  HashDirectory dir;
  ASSERT_TRUE(dir.Put(5, RecordId{10, 3}).ok());
  ASSERT_TRUE(dir.Put(5, RecordId{20, 1}).ok());
  EXPECT_EQ(dir.Lookup(5)->page, 20u);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(RecordIdPackingTest, RoundTrip) {
  RecordId id{123456789, 4321};
  EXPECT_EQ(UnpackRecordId(PackRecordId(id)), id);
  RecordId zero{0, 0};
  EXPECT_EQ(UnpackRecordId(PackRecordId(zero)), zero);
}

class BTreeDirectoryTest : public ::testing::Test {
 protected:
  BTreeDirectoryTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 256}), allocator_(0) {}
  SimulatedDisk disk_;
  BufferManager buffer_;
  PageAllocator allocator_;
};

TEST_F(BTreeDirectoryTest, PersistentMapping) {
  auto tree = BTree::Create(&buffer_, &allocator_);
  ASSERT_TRUE(tree.ok());
  BTreeDirectory dir(&tree.value());
  for (Oid oid = 1; oid <= 500; ++oid) {
    ASSERT_TRUE(dir.Put(oid, RecordId{oid * 7, static_cast<uint16_t>(
                                                   oid % 9)}).ok());
  }
  EXPECT_EQ(dir.size(), 500u);
  for (Oid oid = 1; oid <= 500; ++oid) {
    auto loc = dir.Lookup(oid);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->page, oid * 7);
    EXPECT_EQ(loc->slot, oid % 9);
  }
  ASSERT_TRUE(dir.Remove(250).ok());
  EXPECT_TRUE(dir.Lookup(250).status().IsNotFound());
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 256}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 64) {}
  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
};

TEST_F(ObjectStoreTest, InsertAssignsFreshOid) {
  ObjectData obj = PaperObject(kInvalidOid);
  auto oid = store_.Insert(obj, &file_);
  ASSERT_TRUE(oid.ok());
  EXPECT_NE(*oid, kInvalidOid);
  auto got = store_.Get(*oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->fields, obj.fields);
  EXPECT_EQ(got->oid, *oid);
}

TEST_F(ObjectStoreTest, InsertHonorsExplicitOid) {
  auto oid = store_.Insert(PaperObject(777), &file_);
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*oid, 777u);
  // The allocator skips past explicit OIDs.
  EXPECT_GT(store_.AllocateOid(), 777u);
}

TEST_F(ObjectStoreTest, DuplicateOidRejected) {
  ASSERT_TRUE(store_.Insert(PaperObject(5), &file_).ok());
  EXPECT_TRUE(store_.Insert(PaperObject(5), &file_)
                  .status()
                  .IsAlreadyExists());
}

TEST_F(ObjectStoreTest, GetUnknownOidIsNotFound) {
  EXPECT_TRUE(store_.Get(404).status().IsNotFound());
}

TEST_F(ObjectStoreTest, LocateReturnsPhysicalAddressWithoutIo) {
  auto oid = store_.InsertAtPage(PaperObject(kInvalidOid), &file_, 5);
  ASSERT_TRUE(oid.ok());
  disk_.ResetStats();
  auto loc = store_.Locate(*oid);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->page, 5u);
  EXPECT_EQ(disk_.stats().reads, 0u);
}

TEST_F(ObjectStoreTest, UpdateInPlace) {
  auto oid = store_.Insert(PaperObject(kInvalidOid), &file_);
  ASSERT_TRUE(oid.ok());
  auto obj = store_.Get(*oid);
  ASSERT_TRUE(obj.ok());
  obj->fields[0] = 999;
  ASSERT_TRUE(store_.Update(*obj).ok());
  EXPECT_EQ(store_.Get(*oid)->fields[0], 999);
}

TEST_F(ObjectStoreTest, RemoveDeletesRecordAndMapping) {
  auto oid = store_.Insert(PaperObject(kInvalidOid), &file_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_.Remove(*oid).ok());
  EXPECT_TRUE(store_.Get(*oid).status().IsNotFound());
  EXPECT_TRUE(store_.Locate(*oid).status().IsNotFound());
}

TEST_F(ObjectStoreTest, StatsCountReadsAndWrites) {
  auto oid = store_.Insert(PaperObject(kInvalidOid), &file_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_.Get(*oid).ok());
  ASSERT_TRUE(store_.Get(*oid).ok());
  EXPECT_EQ(store_.stats().objects_written, 1u);
  EXPECT_EQ(store_.stats().objects_read, 2u);
}

TEST_F(ObjectStoreTest, NinePaperObjectsPerPage) {
  // With explicit placement the generator packs the paper's 9 objects into
  // each 1 KB page.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store_.InsertAtPage(PaperObject(kInvalidOid), &file_, 0).ok());
  }
  EXPECT_EQ(file_.record_count(), 9u);
  EXPECT_EQ(file_.pages_used(), 1u);
}

TEST(ObjectArenaTest, NewFromCopiesScalarsAndSizesChildren) {
  ObjectArena arena;
  ObjectData data = PaperObject(11);
  AssembledObject* obj = arena.NewFrom(data, 3);
  EXPECT_EQ(obj->oid, 11u);
  EXPECT_EQ(obj->type_id, 3u);
  EXPECT_EQ(obj->fields, data.fields);
  EXPECT_EQ(obj->children.size(), 3u);
  EXPECT_EQ(obj->children[0], nullptr);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(ObjectArenaTest, AddressesStableAcrossGrowth) {
  ObjectArena arena;
  AssembledObject* first = arena.New();
  first->oid = 1;
  for (int i = 0; i < 10000; ++i) {
    arena.New();
  }
  EXPECT_EQ(first->oid, 1u);  // no relocation
  EXPECT_EQ(arena.size(), 10001u);
}

TEST(AssembledTraversalTest, VisitCountAndSharing) {
  ObjectArena arena;
  // Diamond: root -> {a, b}, both -> shared leaf.
  AssembledObject* root = arena.New();
  AssembledObject* a = arena.New();
  AssembledObject* b = arena.New();
  AssembledObject* leaf = arena.New();
  root->oid = 1;
  a->oid = 2;
  b->oid = 3;
  leaf->oid = 4;
  leaf->fields = {100};
  a->fields = {10};
  b->fields = {20};
  root->fields = {1};
  root->children = {a, b};
  a->children = {leaf};
  b->children = {leaf};
  EXPECT_EQ(CountAssembled(root), 4u);  // leaf counted once
  auto oids = CollectOids(root);
  EXPECT_EQ(oids.size(), 4u);
  EXPECT_TRUE(oids.contains(4));
  // SumField counts the shared leaf once.
  EXPECT_EQ(SumField(root, 0), 1 + 10 + 20 + 100);
}

TEST(AssembledTraversalTest, FindByType) {
  ObjectArena arena;
  AssembledObject* root = arena.New();
  AssembledObject* child = arena.New();
  root->type_id = 1;
  child->type_id = 2;
  child->oid = 9;
  root->children = {child};
  EXPECT_EQ(FindByType(root, 2), child);
  EXPECT_EQ(FindByType(root, 99), nullptr);
}

TEST(AssembledTraversalTest, NullSafe) {
  EXPECT_EQ(CountAssembled(nullptr), 0u);
  ObjectArena arena;
  AssembledObject* root = arena.New();
  root->children = {nullptr, nullptr};
  EXPECT_EQ(CountAssembled(root), 1u);
}

}  // namespace
}  // namespace cobra
