// Telemetry subsystem: trace-recorder invariants, Chrome trace export,
// registry publishing, and EXPLAIN ANALYZE profiling.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "buffer/buffer_manager.h"
#include "exec/iterator.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/profile.h"
#include "obs/query_context.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

// Advances a manual clock on every assembly event so downstream sinks see
// strictly increasing timestamps (execution itself is instantaneous in
// tests).
class ClockTicker : public AssemblyObserver {
 public:
  explicit ClockTicker(obs::ManualClock* clock) : clock_(clock) {}
  void OnEvent(const AssemblyEvent&) override { clock_->Advance(1000); }

 private:
  obs::ManualClock* clock_;
};

class ObsTest : public ::testing::Test {
 protected:
  ObsTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 256}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 64) {}

  Oid Put(TypeId type, std::vector<int32_t> fields, std::vector<Oid> refs,
          size_t page) {
    ObjectData obj;
    obj.oid = store_.AllocateOid();
    obj.type_id = type;
    obj.fields = std::move(fields);
    obj.refs = std::move(refs);
    obj.refs.resize(8, kInvalidOid);
    EXPECT_TRUE(store_.InsertAtPage(obj, &file_, page).ok());
    return obj.oid;
  }

  // root -> leaf template plus `n` chains; returns the root OIDs.
  std::vector<Oid> BuildChains(AssemblyTemplate* tmpl, size_t n) {
    TemplateNode* root = tmpl->AddNode("root");
    TemplateNode* leaf = tmpl->AddNode("leaf");
    root->children.push_back({0, leaf});
    tmpl->SetRoot(root);
    std::vector<Oid> roots;
    for (size_t i = 0; i < n; ++i) {
      Oid l = Put(0, {static_cast<int32_t>(i)}, {}, 2 * i + 1);
      roots.push_back(
          Put(0, {static_cast<int32_t>(i)}, {l}, 2 * i));
    }
    return roots;
  }

  void Drain(AssemblyOperator* op) {
    auto rows = exec::DrainAll(op);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
};

TEST_F(ObsTest, TraceEventOrderingPerComplexObject) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 3);

  obs::ManualClock clock(1);
  ClockTicker ticker(&clock);
  obs::TraceRecorder recorder(&clock);
  obs::TelemetryHub hub;
  hub.AddAssemblyObserver(&ticker);  // tick first, then record
  hub.AddAssemblyObserver(&recorder);

  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&hub);
  Drain(&op);

  // Per complex id: admit strictly precedes every fetch, which strictly
  // precede the emit — both in sequence and in timestamp.
  struct Times {
    uint64_t admit = 0;
    std::vector<uint64_t> fetches;
    uint64_t emit = 0;
  };
  std::map<uint64_t, Times> per_complex;
  for (const obs::TraceEvent& event : recorder.Events()) {
    switch (event.kind) {
      case obs::TraceEvent::Kind::kAdmit:
        per_complex[event.complex_id].admit = event.ts_ns;
        break;
      case obs::TraceEvent::Kind::kFetch:
        per_complex[event.complex_id].fetches.push_back(event.ts_ns);
        break;
      case obs::TraceEvent::Kind::kEmit:
        per_complex[event.complex_id].emit = event.ts_ns;
        break;
      default:
        break;
    }
  }
  ASSERT_EQ(per_complex.size(), 3u);
  for (const auto& [id, times] : per_complex) {
    ASSERT_EQ(times.fetches.size(), 2u) << "complex " << id;
    EXPECT_GT(times.admit, 0u);
    for (uint64_t fetch_ts : times.fetches) {
      EXPECT_LT(times.admit, fetch_ts) << "complex " << id;
      EXPECT_LT(fetch_ts, times.emit) << "complex " << id;
    }
  }
}

TEST_F(ObsTest, TraceLanesBoundedByWindow) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 6);
  obs::ManualClock clock(1);
  ClockTicker ticker(&clock);
  obs::TraceRecorder recorder(&clock);
  obs::TelemetryHub hub;
  hub.AddAssemblyObserver(&ticker);
  hub.AddAssemblyObserver(&recorder);
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&hub);
  Drain(&op);
  // 6 complex objects flowed through, but only W=2 were ever live at once:
  // lanes are recycled.
  EXPECT_LE(recorder.num_lanes(), 2);
  EXPECT_GE(recorder.num_lanes(), 1);
}

TEST_F(ObsTest, RingBufferOverflowKeepsTail) {
  obs::ManualClock clock(0);
  obs::TraceRecorder recorder(&clock, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    clock.Advance(10);
    recorder.OnBufferHit(static_cast<PageId>(i));
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and the retained tail is pages 6..9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].page, static_cast<PageId>(6 + i));
    EXPECT_EQ(events[i].kind, obs::TraceEvent::Kind::kBufferHit);
    if (i > 0) {
      EXPECT_GT(events[i].ts_ns, events[i - 1].ts_ns);
    }
  }

  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST_F(ObsTest, ChromeTraceExportIsValid) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 3);
  obs::ManualClock clock(1);
  ClockTicker ticker(&clock);
  obs::TraceRecorder recorder(&clock);
  obs::TelemetryHub hub;
  hub.AddAssemblyObserver(&ticker);
  hub.AddAssemblyObserver(&recorder);
  disk_.set_listener(&recorder);
  buffer_.set_listener(&recorder);
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&hub);
  Drain(&op);
  disk_.set_listener(nullptr);
  buffer_.set_listener(nullptr);

  // Round-trip through a file, like a real trace capture.
  std::string path = ::testing::TempDir() + "/cobra_trace.json";
  ASSERT_TRUE(recorder.WriteTo(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(contents.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());

  // Chrome trace_event object form: {"traceEvents": [...], ...}.
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);
  bool saw_complete = false;
  bool saw_instant = false;
  bool saw_assemble_span = false;
  std::vector<std::string> thread_names;
  for (const obs::JsonValue& event : events->AsArray()) {
    ASSERT_TRUE(event.is_object());
    const obs::JsonValue* name = event.Find("name");
    const obs::JsonValue* ph = event.Find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(name->is_string());
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    const std::string& phase = ph->AsString();
    if (phase == "X") {
      saw_complete = true;
      // Complete events require ts + dur.
      ASSERT_NE(event.Find("ts"), nullptr);
      ASSERT_NE(event.Find("dur"), nullptr);
      EXPECT_TRUE(event.Find("ts")->is_number());
      EXPECT_TRUE(event.Find("dur")->is_number());
      if (name->AsString().rfind("assemble", 0) == 0) {
        saw_assemble_span = true;
      }
    } else if (phase == "i") {
      saw_instant = true;
      ASSERT_NE(event.Find("ts"), nullptr);
    } else if (phase == "M") {
      const obs::JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      thread_names.push_back(args->Find("name")->AsString());
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_assemble_span);
  // Lane metadata: disk, buffer, and at least one window slot.
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(), "disk"),
            thread_names.end());
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(), "buffer"),
            thread_names.end());
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(),
                      "window slot 0"),
            thread_names.end());
}

TEST_F(ObsTest, RegistryPublisherMatchesOperatorStats) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 4);
  obs::Registry registry;
  obs::RegistryPublisher publisher(&registry);
  disk_.set_listener(&publisher);
  buffer_.set_listener(&publisher);
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&publisher);
  uint64_t reads_before = disk_.stats().reads;
  Drain(&op);
  disk_.set_listener(nullptr);
  buffer_.set_listener(nullptr);

  const AssemblyStats& stats = op.stats();
  EXPECT_EQ(registry.GetCounter("assembly.admitted")->value(),
            stats.complex_admitted);
  EXPECT_EQ(registry.GetCounter("assembly.emitted")->value(),
            stats.complex_emitted);
  EXPECT_EQ(registry.GetCounter("assembly.aborted")->value(),
            stats.complex_aborted);
  EXPECT_EQ(registry.GetCounter("assembly.fetches")->value(),
            stats.objects_fetched);
  EXPECT_EQ(registry.GetCounter("disk.reads")->value(),
            disk_.stats().reads - reads_before);
  EXPECT_EQ(registry.GetHistogram("disk.seek_distance")->count(),
            disk_.stats().reads - reads_before);
  // Window-occupancy gauge high-water mark is bounded by W.
  EXPECT_LE(registry.GetGauge("assembly.window_occupancy")->max(), 2u);

  // The snapshot carries the same numbers.
  obs::JsonValue snapshot = registry.ToJson();
  const obs::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("assembly.emitted")->AsInt(),
            static_cast<int64_t>(stats.complex_emitted));
}

TEST_F(ObsTest, ExplainAnalyzeRowCountsMatchDrainAll) {
  // Stacked assembly: rows carry two root refs; each Assemble resolves one
  // column, so the plan nests two assembly operators over the scan.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->children.push_back({0, leaf});
  tmpl.SetRoot(root);
  std::vector<Row> rows;
  for (size_t i = 0; i < 4; ++i) {
    Oid l1 = Put(0, {static_cast<int32_t>(i)}, {}, 4 * i);
    Oid r1 = Put(0, {static_cast<int32_t>(i)}, {l1}, 4 * i + 1);
    Oid l2 = Put(0, {static_cast<int32_t>(i)}, {}, 4 * i + 2);
    Oid r2 = Put(0, {static_cast<int32_t>(i)}, {l2}, 4 * i + 3);
    rows.push_back(Row{Value::Ref(r1), Value::Ref(r2)});
  }

  obs::ManualClock clock(0);
  auto plan = exec::PlanBuilder::FromRows(rows)
                  .Profile(&clock)
                  .Assemble(&tmpl, &store_, AssemblyOptions{.window_size = 2},
                            /*root_column=*/0)
                  .Assemble(&tmpl, &store_, AssemblyOptions{.window_size = 2},
                            /*root_column=*/1);
  auto iter = std::move(plan).Build();
  auto drained = exec::DrainAll(iter.get());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 4u);

  std::string analyzed = exec::Explain(plan);
  std::istringstream lines(analyzed);
  std::string line;
  size_t annotated = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("(next="), std::string::npos) << line;
    // Every operator in this pipeline passes all 4 rows through.
    EXPECT_NE(line.find("rows=4"), std::string::npos) << line;
    ++annotated;
  }
  EXPECT_EQ(annotated, 3u);  // Assembly, Assembly, VectorScan
  EXPECT_NE(analyzed.find("Assembly"), std::string::npos);
  EXPECT_NE(analyzed.find("VectorScan"), std::string::npos);
}

TEST_F(ObsTest, UnprofiledExplainHasNoAnnotations) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 2);
  auto plan = exec::PlanBuilder::FromOids(roots).Assemble(
      &tmpl, &store_, AssemblyOptions{.window_size = 2});
  auto iter = std::move(plan).Build();
  auto drained = exec::DrainAll(iter.get());
  ASSERT_TRUE(drained.ok());
  // No Profile() call: ExplainAnalyze degenerates to the plain tree — the
  // plan contains zero profiling decorators (the disabled-overhead
  // guarantee).
  std::string analyzed = exec::Explain(plan);
  EXPECT_EQ(analyzed, plan.Explain());
  EXPECT_EQ(analyzed.find("next="), std::string::npos);
}

TEST_F(ObsTest, ProfiledIteratorCountsWithManualClock) {
  std::vector<Row> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(Row{Value::Int(i)});
  obs::ManualClock clock(0);
  obs::ProfiledIterator profiled(std::make_unique<VectorScan>(rows), &clock);
  ASSERT_TRUE(profiled.Open().ok());
  exec::RowBatch batch;
  batch.set_capacity(1);  // row-at-a-time pulls: one NextBatch call per row
  for (;;) {
    auto n = profiled.NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    clock.Advance(500);  // pretend each row costs 500ns downstream
  }
  ASSERT_TRUE(profiled.Close().ok());
  EXPECT_EQ(profiled.rows(), 5u);
  EXPECT_EQ(profiled.next_calls(), 6u);  // 5 single-row batches + EOS
  // The clock only moved outside NextBatch(), so no time is attributed.
  EXPECT_EQ(profiled.total_nanos(), 0u);
  EXPECT_NE(profiled.Summary().find("next=6"), std::string::npos);
  EXPECT_NE(profiled.Summary().find("rows=5"), std::string::npos);
}

TEST_F(ObsTest, DiskTraceEventsCarryQueryId) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 3);
  obs::ManualClock clock(1);
  ClockTicker ticker(&clock);
  obs::TraceRecorder recorder(&clock);
  obs::TelemetryHub hub;
  hub.AddAssemblyObserver(&ticker);
  hub.AddAssemblyObserver(&recorder);

  // Cold pool over the same disk so the assembly actually reads pages;
  // flush *before* attaching the disk listener so the write-back noise is
  // not recorded.
  ASSERT_TRUE(buffer_.FlushAll().ok());
  disk_.set_listener(&recorder);
  BufferManager cold(&disk_, BufferOptions{.num_frames = 256});
  ObjectStore cold_store(&cold, &directory_);

  auto ctx = std::make_shared<obs::QueryContext>(42, "tagged");
  {
    obs::ScopedQueryContext scope(ctx);
    std::vector<Row> rows;
    for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
    AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl,
                        &cold_store, AssemblyOptions{.window_size = 2});
    op.set_observer(&hub);
    Drain(&op);
  }
  disk_.set_listener(nullptr);

  // Every disk event recorded while query 42 was current carries its id.
  size_t disk_events = 0;
  for (const obs::TraceEvent& event : recorder.Events()) {
    if (event.kind == obs::TraceEvent::Kind::kDiskRead ||
        event.kind == obs::TraceEvent::Kind::kDiskWrite) {
      disk_events++;
      EXPECT_EQ(event.query_id, 42u);
    }
  }
  ASSERT_GT(disk_events, 0u);

  // The Chrome export surfaces the id as args.query on disk slices.
  std::string path = ::testing::TempDir() + "/cobra_tagged_trace.json";
  ASSERT_TRUE(recorder.WriteTo(path).ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(contents.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());
  size_t tagged = 0;
  for (const obs::JsonValue& event : parsed->Find("traceEvents")->AsArray()) {
    const obs::JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string& n = name->AsString();
    if (n != "disk-read" && n != "disk-read-run" && n != "disk-write") {
      continue;
    }
    const obs::JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr) << n;
    const obs::JsonValue* query = args->Find("query");
    ASSERT_NE(query, nullptr) << n;
    EXPECT_EQ(query->AsInt(), 42);
    tagged++;
  }
  EXPECT_EQ(tagged, disk_events);
}

TEST_F(ObsTest, ChromeTraceInstantsMonotonePerThread) {
  AssemblyTemplate tmpl;
  std::vector<Oid> roots = BuildChains(&tmpl, 4);
  obs::ManualClock clock(1);
  ClockTicker ticker(&clock);
  obs::TraceRecorder recorder(&clock);
  obs::TelemetryHub hub;
  hub.AddAssemblyObserver(&ticker);
  hub.AddAssemblyObserver(&recorder);
  disk_.set_listener(&recorder);
  buffer_.set_listener(&recorder);
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&hub);
  Drain(&op);
  disk_.set_listener(nullptr);
  buffer_.set_listener(nullptr);

  std::string path = ::testing::TempDir() + "/cobra_monotone_trace.json";
  ASSERT_TRUE(recorder.WriteTo(path).ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(contents.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());

  // Within each lane (tid), instants and span *ends* must appear in
  // non-decreasing timestamp order — the viewer relies on it.
  std::map<int64_t, double> last_ts;
  size_t checked = 0;
  for (const obs::JsonValue& event : parsed->Find("traceEvents")->AsArray()) {
    const obs::JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const std::string& phase = ph->AsString();
    double ts = 0;
    if (phase == "i") {
      ts = event.Find("ts")->AsDouble();
    } else if (phase == "X") {
      ts = event.Find("ts")->AsDouble() + event.Find("dur")->AsDouble();
    } else {
      continue;
    }
    int64_t tid = event.Find("tid")->AsInt();
    auto [it, inserted] = last_ts.try_emplace(tid, ts);
    if (!inserted) {
      EXPECT_LE(it->second, ts) << "tid " << tid;
      it->second = ts;
    }
    checked++;
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GE(last_ts.size(), 2u);  // at least a window lane and the disk lane
}

TEST_F(ObsTest, RegistryJsonIsDeterministicAndSorted) {
  // Same instruments, opposite insertion order: identical serialized bytes.
  obs::Registry a;
  a.GetCounter("zeta")->Inc(1);
  a.GetCounter("alpha")->Inc(2);
  a.GetHistogram("lat")->Add(100);
  a.GetGauge("g")->Set(5);
  obs::Registry b;
  b.GetGauge("g")->Set(5);
  b.GetHistogram("lat")->Add(100);
  b.GetCounter("alpha")->Inc(2);
  b.GetCounter("zeta")->Inc(1);
  EXPECT_EQ(a.ToJson().Dump(2), b.ToJson().Dump(2));

  // Counter names come out sorted.
  obs::JsonValue snapshot = a.ToJson();
  const obs::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  const auto& members = counters->AsObject();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "alpha");
  EXPECT_EQ(members[1].first, "zeta");
}

TEST_F(ObsTest, HistogramJsonIncludesTailQuantiles) {
  LogHistogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.Add(i);
  obs::JsonValue json = obs::HistogramToJson(histogram);
  ASSERT_NE(json.Find("count"), nullptr);
  EXPECT_EQ(json.Find("count")->AsInt(), 1000);
  ASSERT_NE(json.Find("p50"), nullptr);
  ASSERT_NE(json.Find("p99"), nullptr);
  ASSERT_NE(json.Find("p999"), nullptr);
  EXPECT_LE(json.Find("p50")->AsInt(), json.Find("p99")->AsInt());
  EXPECT_LE(json.Find("p99")->AsInt(), json.Find("p999")->AsInt());
}

TEST_F(ObsTest, SpanEventJsonShape) {
  obs::SpanEvent event;
  event.kind = obs::SpanEventKind::kDiskReadRun;
  event.ts_ns = 12345;
  event.query_id = 9;
  event.page = 77;
  event.a = 3;
  event.b = 8;
  obs::JsonValue json = obs::SpanEventToJson(event);
  EXPECT_EQ(json.Find("kind")->AsString(),
            obs::SpanEventKindName(obs::SpanEventKind::kDiskReadRun));
  EXPECT_EQ(json.Find("ts_ns")->AsInt(), 12345);
  EXPECT_EQ(json.Find("query")->AsInt(), 9);
  EXPECT_EQ(json.Find("page")->AsInt(), 77);
  EXPECT_EQ(json.Find("a")->AsInt(), 3);
  EXPECT_EQ(json.Find("b")->AsInt(), 8);
}

TEST_F(ObsTest, FlightRecorderJsonShape) {
  obs::FlightRecorder recorder(/*capacity=*/16);
  obs::SpanEvent event;
  event.kind = obs::SpanEventKind::kDiskRead;
  event.ts_ns = 1;
  event.query_id = 2;
  recorder.Record(event);
  obs::JsonValue json = recorder.ToJson();
  EXPECT_EQ(json.Find("capacity")->AsInt(), 16);
  EXPECT_EQ(json.Find("dropped")->AsInt(), 0);
  ASSERT_NE(json.Find("events"), nullptr);
  ASSERT_EQ(json.Find("events")->size(), 1u);
  // The document round-trips through the parser.
  auto parsed = obs::JsonValue::Parse(json.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(ObsTest, RegistryMergeAccumulates) {
  obs::Registry a;
  obs::Registry b;
  a.GetCounter("x")->Inc(3);
  b.GetCounter("x")->Inc(4);
  b.GetCounter("only_b")->Inc(1);
  a.GetGauge("g")->Set(10);
  b.GetGauge("g")->Set(7);
  a.GetHistogram("h")->Add(1);
  b.GetHistogram("h")->Add(100);
  a.Merge(b);
  EXPECT_EQ(a.GetCounter("x")->value(), 7u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 1u);
  EXPECT_EQ(a.GetGauge("g")->max(), 10u);
  EXPECT_EQ(a.GetHistogram("h")->count(), 2u);
  EXPECT_EQ(a.GetHistogram("h")->max(), 100u);
}

}  // namespace
}  // namespace cobra
