// Assembly event-stream invariants via the observer hook.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "assembly/assembly_operator.h"
#include "buffer/buffer_manager.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;

class RecordingObserver : public AssemblyObserver {
 public:
  void OnEvent(const AssemblyEvent& event) override {
    events.push_back(event);
  }
  std::vector<AssemblyEvent> events;

  size_t CountKind(AssemblyEvent::Kind kind) const {
    size_t n = 0;
    for (const auto& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
};

class ObserverTest : public ::testing::Test {
 protected:
  ObserverTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 256}),
        store_(&buffer_, &directory_),
        file_(&buffer_, 0, 64) {}

  Oid Put(TypeId type, std::vector<int32_t> fields, std::vector<Oid> refs,
          size_t page) {
    ObjectData obj;
    obj.oid = store_.AllocateOid();
    obj.type_id = type;
    obj.fields = std::move(fields);
    obj.refs = std::move(refs);
    obj.refs.resize(8, kInvalidOid);
    EXPECT_TRUE(store_.InsertAtPage(obj, &file_, page).ok());
    return obj.oid;
  }

  SimulatedDisk disk_;
  BufferManager buffer_;
  HashDirectory directory_;
  ObjectStore store_;
  HeapFile file_;
};

TEST_F(ObserverTest, LifecycleEventsPerComplexObject) {
  // Two chains: root -> leaf.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->children.push_back({0, leaf});
  tmpl.SetRoot(root);
  Oid l1 = Put(0, {1}, {}, 1);
  Oid r1 = Put(0, {1}, {l1}, 0);
  Oid l2 = Put(0, {2}, {}, 3);
  Oid r2 = Put(0, {2}, {l2}, 2);

  RecordingObserver observer;
  std::vector<Row> rows = {{Value::Ref(r1)}, {Value::Ref(r2)}};
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&observer);
  auto drained = exec::DrainAll(&op);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();

  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kAdmit), 2u);
  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kFetch), 4u);
  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kEmit), 2u);
  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kAbort), 0u);

  // Per complex object: admit precedes every fetch, which precede emit.
  std::map<uint64_t, std::vector<AssemblyEvent::Kind>> per_complex;
  for (const auto& event : observer.events) {
    if (event.complex_id != 0) {
      per_complex[event.complex_id].push_back(event.kind);
    }
  }
  ASSERT_EQ(per_complex.size(), 2u);
  for (const auto& [id, kinds] : per_complex) {
    ASSERT_GE(kinds.size(), 3u);
    EXPECT_EQ(kinds.front(), AssemblyEvent::Kind::kAdmit);
    EXPECT_EQ(kinds.back(), AssemblyEvent::Kind::kEmit);
  }
}

TEST_F(ObserverTest, AbortEventOnPredicateFailure) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  root->predicate = [](const ObjectData& obj) { return obj.fields[0] > 0; };
  tmpl.SetRoot(root);
  Oid pass = Put(0, {1}, {}, 0);
  Oid fail = Put(0, {-1}, {}, 1);

  RecordingObserver observer;
  std::vector<Row> rows = {{Value::Ref(pass)}, {Value::Ref(fail)}};
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{});
  op.set_observer(&observer);
  auto drained = exec::DrainAll(&op);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->size(), 1u);
  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kAbort), 1u);
  EXPECT_EQ(observer.CountKind(AssemblyEvent::Kind::kEmit), 1u);
}

TEST_F(ObserverTest, SharedHitEventsCarryOid) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  leaf->shared = true;
  root->children.push_back({0, leaf});
  tmpl.SetRoot(root);
  Oid shared = Put(0, {9}, {}, 5);
  Oid r1 = Put(0, {1}, {shared}, 0);
  Oid r2 = Put(0, {2}, {shared}, 1);

  RecordingObserver observer;
  std::vector<Row> rows = {{Value::Ref(r1)}, {Value::Ref(r2)}};
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2});
  op.set_observer(&observer);
  auto drained = exec::DrainAll(&op);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(observer.CountKind(AssemblyEvent::Kind::kSharedHit), 1u);
  for (const auto& event : observer.events) {
    if (event.kind == AssemblyEvent::Kind::kSharedHit) {
      EXPECT_EQ(event.oid, shared);
      EXPECT_EQ(event.node, leaf);
    }
  }
}

TEST_F(ObserverTest, SlidingWindowAdmitsReplacementAfterEmit) {
  // §4: "As soon as any one of these complex objects becomes assembled and
  // passed up the query tree, the operator retrieves another one to work
  // on."  With W=2 and 6 inputs, an admit for object k+2 must appear after
  // the emit of some earlier object — admissions interleave with emits
  // rather than all happening up front.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->children.push_back({0, leaf});
  tmpl.SetRoot(root);
  std::vector<Row> rows;
  for (size_t i = 0; i < 6; ++i) {
    Oid l = Put(0, {static_cast<int32_t>(i)}, {}, 2 * i + 1);
    rows.push_back(Row{Value::Ref(Put(0, {static_cast<int32_t>(i)}, {l},
                                      2 * i))});
  }
  RecordingObserver observer;
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{.window_size = 2,
                                      .scheduler =
                                          SchedulerKind::kDepthFirst});
  op.set_observer(&observer);
  auto drained = exec::DrainAll(&op);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();

  // Check interleaving: the 3rd admit happens after the 1st emit.
  int admits = 0;
  int emits = 0;
  bool third_admit_after_first_emit = false;
  for (const auto& event : observer.events) {
    if (event.kind == AssemblyEvent::Kind::kAdmit) {
      ++admits;
      if (admits == 3 && emits >= 1) {
        third_admit_after_first_emit = true;
      }
    } else if (event.kind == AssemblyEvent::Kind::kEmit) {
      ++emits;
    }
  }
  EXPECT_EQ(admits, 6);
  EXPECT_EQ(emits, 6);
  EXPECT_TRUE(third_admit_after_first_emit);
}

TEST_F(ObserverTest, NoObserverIsFine) {
  AssemblyTemplate tmpl;
  tmpl.SetRoot(tmpl.AddNode("root"));
  Oid r = Put(0, {1}, {}, 0);
  std::vector<Row> rows = {{Value::Ref(r)}};
  AssemblyOperator op(std::make_unique<VectorScan>(rows), &tmpl, &store_,
                      AssemblyOptions{});
  ASSERT_TRUE(op.Open().ok());
  exec::RowBatch batch;
  auto n = op.NextBatch(&batch);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  ASSERT_TRUE(op.Close().ok());
}

}  // namespace
}  // namespace cobra
