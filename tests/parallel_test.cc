// Partitioned parallel assembly (§7): correctness and scaling.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "assembly/naive.h"
#include "assembly/parallel.h"

namespace cobra {
namespace {

TEST(ParallelAssemblyTest, RejectsBadPartitioning) {
  AcobOptions options;
  options.num_complex_objects = 2;
  EXPECT_TRUE(
      BuildPartitionedAcob(options, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      BuildPartitionedAcob(options, 3).status().IsInvalidArgument());
}

TEST(ParallelAssemblyTest, PartitionSizesCoverTheSet) {
  AcobOptions options;
  options.num_complex_objects = 103;
  auto db = BuildPartitionedAcob(options, 4);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ((*db)->partitions.size(), 4u);
  size_t total = 0;
  for (const auto& partition : (*db)->partitions) {
    total += partition->roots.size();
    EXPECT_GE(partition->roots.size(), 25u);
    EXPECT_LE(partition->roots.size(), 26u);
  }
  EXPECT_EQ(total, 103u);
}

TEST(ParallelAssemblyTest, UnionOfOutputsMatchesPerPartitionNaive) {
  AcobOptions options;
  options.num_complex_objects = 60;
  options.clustering = Clustering::kUnclustered;
  options.seed = 77;
  auto db = BuildPartitionedAcob(options, 3);
  ASSERT_TRUE(db.ok());

  // Oracle: naive assembly per partition.
  std::set<std::pair<size_t, Oid>> expected;
  for (size_t p = 0; p < (*db)->partitions.size(); ++p) {
    AcobDatabase* partition = (*db)->partitions[p].get();
    NaiveAssembler naive(partition->store.get(), &partition->tmpl);
    ObjectArena arena;
    for (Oid root : partition->roots) {
      auto obj = naive.AssembleOne(root, &arena);
      ASSERT_TRUE(obj.ok());
      EXPECT_EQ(CountAssembled(*obj), 7u);
      expected.insert({p, root});
    }
  }

  ASSERT_TRUE((*db)->ColdRestart().ok());
  auto parallel = (*db)->MakeParallelAssembly(
      AssemblyOptions{.window_size = 10});
  ASSERT_TRUE(parallel->Open().ok());
  exec::RowBatch batch;
  std::set<Oid> emitted;
  for (;;) {
    auto n = parallel->NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      const AssembledObject* obj = batch[i][0].AsObject();
      EXPECT_EQ(CountAssembled(obj), 7u);
      emitted.insert(obj->oid);
    }
  }
  ASSERT_TRUE(parallel->Close().ok());
  EXPECT_EQ(emitted.size(), 60u);
  for (const auto& [partition, root] : expected) {
    EXPECT_TRUE(emitted.contains(root)) << "partition " << partition;
  }
}

TEST(ParallelAssemblyTest, OutputInterleavesPartitions) {
  AcobOptions options;
  options.num_complex_objects = 40;
  options.seed = 5;
  auto db = BuildPartitionedAcob(options, 2);
  ASSERT_TRUE(db.ok());
  std::unordered_set<Oid> partition0((*db)->partitions[0]->roots.begin(),
                                     (*db)->partitions[0]->roots.end());
  ASSERT_TRUE((*db)->ColdRestart().ok());
  auto parallel =
      (*db)->MakeParallelAssembly(AssemblyOptions{.window_size = 4});
  ASSERT_TRUE(parallel->Open().ok());
  // Among the first 4 single-row batches, both partitions appear: the
  // round-robin is batch-granular, so capacity-1 batches alternate devices.
  exec::RowBatch batch;
  batch.set_capacity(1);
  int from0 = 0;
  int from1 = 0;
  for (int i = 0; i < 4; ++i) {
    auto n = parallel->NextBatch(&batch);
    ASSERT_TRUE(n.ok() && *n == 1u);
    if (partition0.contains(batch[0][0].AsObject()->oid)) {
      ++from0;
    } else {
      ++from1;
    }
  }
  EXPECT_GT(from0, 0);
  EXPECT_GT(from1, 0);
  ASSERT_TRUE(parallel->Close().ok());
}

TEST(ParallelAssemblyTest, DevicesScaleDownTheMakespan) {
  // One device vs four: the same total work splits across devices; the
  // elapsed (max per-device) seek must shrink substantially.
  AcobOptions options;
  options.num_complex_objects = 400;
  options.clustering = Clustering::kUnclustered;
  options.seed = 13;

  auto drain = [](PartitionedAcobDatabase* db) {
    EXPECT_TRUE(db->ColdRestart().ok());
    auto parallel = db->MakeParallelAssembly(
        AssemblyOptions{.window_size = 25});
    EXPECT_TRUE(parallel->Open().ok());
    exec::RowBatch batch;
    for (;;) {
      auto n = parallel->NextBatch(&batch);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) break;
    }
    EXPECT_TRUE(parallel->Close().ok());
  };

  auto single = BuildPartitionedAcob(options, 1);
  ASSERT_TRUE(single.ok());
  drain(single->get());
  uint64_t single_seek = (*single)->IoStats().TotalSeekPages();
  ASSERT_GT(single_seek, 0u);

  auto quad = BuildPartitionedAcob(options, 4);
  ASSERT_TRUE(quad.ok());
  drain(quad->get());
  ParallelIoStats stats = (*quad)->IoStats();
  EXPECT_EQ(stats.per_device.size(), 4u);
  // Every device did work, reasonably balanced.
  for (const DiskStats& device : stats.per_device) {
    EXPECT_GT(device.reads, 0u);
  }
  EXPECT_LT(stats.Imbalance(), 1.5);
  // At least 2x better elapsed I/O with 4 devices (ideal would be ~4x,
  // but smaller per-device databases also have smaller spans, so the
  // speedup is super-linear in seeks per read and we only bound loosely).
  EXPECT_GT(stats.SpeedupOver(single_seek), 2.0);
}

TEST(ParallelIoStatsTest, Aggregations) {
  ParallelIoStats stats;
  DiskStats a;
  a.reads = 10;
  a.read_seek_pages = 100;
  DiskStats b;
  b.reads = 30;
  b.read_seek_pages = 300;
  stats.per_device = {a, b};
  EXPECT_EQ(stats.TotalReads(), 40u);
  EXPECT_EQ(stats.TotalSeekPages(), 400u);
  EXPECT_EQ(stats.MakespanSeekPages(), 300u);
  EXPECT_DOUBLE_EQ(stats.SpeedupOver(600), 2.0);
  EXPECT_DOUBLE_EQ(stats.Imbalance(), 1.5);
}

}  // namespace
}  // namespace cobra
