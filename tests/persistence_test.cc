// Disk-image persistence and B-tree bulk loading.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "exec/distinct.h"
#include "exec/scan.h"
#include "file/heap_file.h"
#include "index/btree.h"
#include "object/directory.h"
#include "object/object_store.h"
#include "storage/disk.h"
#include "workload/acob.h"

namespace cobra {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DiskPersistenceTest, SaveLoadRoundTrip) {
  SimulatedDisk disk;
  std::vector<std::byte> page(disk.page_size());
  for (PageId p : {PageId{0}, PageId{7}, PageId{1000}}) {
    page[0] = static_cast<std::byte>(p & 0xFF);
    page[1] = static_cast<std::byte>(0xEE);
    ASSERT_TRUE(disk.WritePage(p, page.data()).ok());
  }
  std::string path = TempPath("disk_roundtrip.img");
  ASSERT_TRUE(disk.SaveTo(path).ok());

  auto loaded = SimulatedDisk::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->page_size(), disk.page_size());
  EXPECT_EQ((*loaded)->allocated_pages(), 3u);
  EXPECT_EQ((*loaded)->page_span(), 1001u);
  std::vector<std::byte> out(disk.page_size());
  for (PageId p : {PageId{0}, PageId{7}, PageId{1000}}) {
    ASSERT_TRUE((*loaded)->ReadPage(p, out.data()).ok());
    EXPECT_EQ(out[0], static_cast<std::byte>(p & 0xFF));
    EXPECT_EQ(out[1], std::byte{0xEE});
  }
  // Statistics start clean on the loaded image.
  EXPECT_EQ((*loaded)->stats().writes, 0u);
  std::remove(path.c_str());
}

TEST(DiskPersistenceTest, LoadRejectsGarbage) {
  std::string path = TempPath("not_an_image.img");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("hello world, definitely not a disk image", f);
  std::fclose(f);
  EXPECT_TRUE(SimulatedDisk::LoadFrom(path).status().IsCorruption());
  std::remove(path.c_str());
  EXPECT_TRUE(
      SimulatedDisk::LoadFrom(TempPath("missing.img")).status().IsNotFound());
}

TEST(DiskPersistenceTest, DatabaseSurvivesSaveLoad) {
  // Build a small object database, persist the disk, reload, reattach a
  // fresh stack, and read objects back through a rebuilt B-tree directory.
  std::string path = TempPath("acob.img");
  std::vector<Oid> roots;
  PageId btree_meta = kInvalidPageId;
  {
    SimulatedDisk disk;
    BufferManager buffer(&disk, BufferOptions{.num_frames = 1024});
    HashDirectory hash_dir;
    ObjectStore store(&buffer, &hash_dir);
    PageAllocator allocator;
    size_t file_pages = 64;
    HeapFile file(&buffer, allocator.AllocateExtent(file_pages), file_pages);
    for (int i = 0; i < 100; ++i) {
      ObjectData obj;
      obj.type_id = 1;
      obj.fields = {i, i * 2, 0, 0};
      obj.refs.assign(8, kInvalidOid);
      auto oid = store.Insert(obj, &file);
      ASSERT_TRUE(oid.ok());
      roots.push_back(*oid);
    }
    // Persist the OID directory itself as a B-tree on the same disk.
    auto tree = BTree::Create(&buffer, &allocator);
    ASSERT_TRUE(tree.ok());
    btree_meta = tree->meta_page();
    BTreeDirectory btree_dir(&tree.value());
    for (Oid oid : roots) {
      auto loc = hash_dir.Lookup(oid);
      ASSERT_TRUE(loc.ok());
      ASSERT_TRUE(btree_dir.Put(oid, *loc).ok());
    }
    ASSERT_TRUE(buffer.FlushAll().ok());
    ASSERT_TRUE(disk.SaveTo(path).ok());
  }

  auto disk = SimulatedDisk::LoadFrom(path);
  ASSERT_TRUE(disk.ok());
  BufferManager buffer(disk->get(), BufferOptions{.num_frames = 1024});
  PageAllocator allocator((*disk)->page_span());
  auto tree = BTree::Open(&buffer, &allocator, btree_meta);
  ASSERT_TRUE(tree.ok());
  BTreeDirectory directory(&tree.value());
  ObjectStore store(&buffer, &directory);
  for (size_t i = 0; i < roots.size(); ++i) {
    auto obj = store.Get(roots[i]);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    EXPECT_EQ(obj->fields[0], static_cast<int32_t>(i));
  }
  std::remove(path.c_str());
}

class BulkLoadTest : public ::testing::Test {
 protected:
  BulkLoadTest()
      : buffer_(&disk_, BufferOptions{.num_frames = 4096}), allocator_(0) {}
  SimulatedDisk disk_;
  BufferManager buffer_;
  PageAllocator allocator_;
};

TEST_F(BulkLoadTest, EmptyInputMakesEmptyTree) {
  auto tree = BTree::BulkLoad(&buffer_, &allocator_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BulkLoadTest, SmallInputSingleLeaf) {
  std::vector<std::pair<uint64_t, uint64_t>> input = {{1, 10}, {5, 50}};
  auto tree = BTree::BulkLoad(&buffer_, &allocator_, input);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 2u);
  EXPECT_EQ(*tree->Height(), 1);
  EXPECT_EQ(*tree->Get(5), 50u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BulkLoadTest, LargeInputInvariantsAndLookups) {
  std::vector<std::pair<uint64_t, uint64_t>> input;
  for (uint64_t k = 0; k < 20000; ++k) {
    input.push_back({k * 3, k});
  }
  auto tree = BTree::BulkLoad(&buffer_, &allocator_, input);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 20000u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (uint64_t k = 0; k < 20000; k += 37) {
    ASSERT_EQ(*tree->Get(k * 3), k);
    EXPECT_FALSE(tree->Contains(k * 3 + 1));
  }
  // Full ordered iteration.
  auto it = tree->Begin();
  ASSERT_TRUE(it.ok());
  uint64_t key = 0;
  uint64_t value = 0;
  size_t count = 0;
  uint64_t previous = 0;
  for (;;) {
    auto has = it->Next(&key, &value);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    if (count > 0) {
      EXPECT_GT(key, previous);
    }
    previous = key;
    ++count;
  }
  EXPECT_EQ(count, 20000u);
}

TEST_F(BulkLoadTest, LoadedTreeRemainsUpdatable) {
  std::vector<std::pair<uint64_t, uint64_t>> input;
  for (uint64_t k = 0; k < 5000; ++k) {
    input.push_back({k * 2, k});
  }
  auto tree = BTree::BulkLoad(&buffer_, &allocator_, input);
  ASSERT_TRUE(tree.ok());
  // Mixed updates after the bulk build.
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Put(k * 2 + 1, k).ok());  // odd keys between
  }
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Delete(k * 2).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->size(), 5000u + 2000u - 1000u);
  EXPECT_TRUE(tree->Contains(1));
  EXPECT_FALSE(tree->Contains(0));
}

TEST_F(BulkLoadTest, RejectsUnsortedInput) {
  std::vector<std::pair<uint64_t, uint64_t>> unsorted = {{5, 1}, {3, 2}};
  EXPECT_TRUE(BTree::BulkLoad(&buffer_, &allocator_, unsorted)
                  .status()
                  .IsInvalidArgument());
  std::vector<std::pair<uint64_t, uint64_t>> dupes = {{3, 1}, {3, 2}};
  EXPECT_TRUE(BTree::BulkLoad(&buffer_, &allocator_, dupes)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BulkLoadTest, AwkwardSizesAroundNodeBoundaries) {
  // Sizes near leaf capacity (63) and its multiples exercise the runt
  // handling in the chunker.
  for (size_t n : {62u, 63u, 64u, 125u, 126u, 127u, 3969u, 3970u}) {
    PageAllocator allocator(100000 + n * 200);
    std::vector<std::pair<uint64_t, uint64_t>> input;
    for (uint64_t k = 0; k < n; ++k) {
      input.push_back({k, k});
    }
    auto tree = BTree::BulkLoad(&buffer_, &allocator, input, /*fill=*/1.0);
    ASSERT_TRUE(tree.ok()) << n;
    ASSERT_TRUE(tree->CheckInvariants().ok()) << n;
    EXPECT_EQ(tree->size(), n);
    EXPECT_EQ(*tree->Get(n - 1), n - 1);
  }
}

TEST(DistinctTest, DropsDuplicates) {
  using exec::Row;
  using exec::Value;
  std::vector<Row> rows = {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(1)},
                           {Value::Int(3)}, {Value::Int(2)}};
  exec::Distinct distinct(std::make_unique<exec::VectorScan>(rows));
  auto out = exec::DrainAll(&distinct);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0][0].AsInt(), 1);
  EXPECT_EQ((*out)[1][0].AsInt(), 2);
  EXPECT_EQ((*out)[2][0].AsInt(), 3);
}

TEST(DistinctTest, NullRowsAndMultiColumn) {
  using exec::Row;
  using exec::Value;
  std::vector<Row> rows = {{Value::Null(), Value::Int(1)},
                           {Value::Null(), Value::Int(1)},
                           {Value::Null(), Value::Int(2)},
                           {Value::Int(1), Value::Int(1)}};
  exec::Distinct distinct(std::make_unique<exec::VectorScan>(rows));
  auto out = exec::DrainAll(&distinct);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

}  // namespace
}  // namespace cobra
