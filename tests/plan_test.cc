#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/plan.h"
#include "workload/acob.h"

namespace cobra::exec {
namespace {

Row IntRow(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int(v));
  return row;
}

TEST(PlanBuilderTest, FilterProjectLimitPipeline) {
  auto plan = PlanBuilder::FromRows(
                  {IntRow({1}), IntRow({5}), IntRow({9}), IntRow({3})})
                  .Filter(Cmp(CmpOp::kGt, Col(0), LitInt(2)))
                  .Project([] {
                    std::vector<ExprPtr> exprs;
                    exprs.push_back(Arith(ArithOp::kMul, Col(0), LitInt(2)));
                    return exprs;
                  }())
                  .Limit(2)
                  .Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
  EXPECT_EQ((*rows)[1][0].AsInt(), 18);
}

TEST(PlanBuilderTest, ExplainRendersTree) {
  PlanBuilder builder =
      PlanBuilder::FromRows({IntRow({1})})
          .Filter(Cmp(CmpOp::kGt, Col(0), LitInt(0)))
          .Limit(5);
  std::string explain = builder.Explain();
  EXPECT_NE(explain.find("Limit [5]"), std::string::npos);
  EXPECT_NE(explain.find("└─ Filter"), std::string::npos);
  EXPECT_NE(explain.find("VectorScan [1 rows]"), std::string::npos);
  // Limit is the root: first line.
  EXPECT_EQ(explain.rfind("Limit", 0), 0u);
}

TEST(PlanBuilderTest, HashJoinExplainShowsBothChildren) {
  PlanBuilder builder = PlanBuilder::FromRows({IntRow({1, 10})})
                            .HashJoin(PlanBuilder::FromRows({IntRow({1, 7})}),
                                      [] {
                                        std::vector<ExprPtr> k;
                                        k.push_back(Col(0));
                                        return k;
                                      }(),
                                      [] {
                                        std::vector<ExprPtr> k;
                                        k.push_back(Col(0));
                                        return k;
                                      }());
  std::string explain = builder.Explain();
  EXPECT_NE(explain.find("HashJoin"), std::string::npos);
  EXPECT_NE(explain.find("├─ VectorScan"), std::string::npos);
  EXPECT_NE(explain.find("└─ VectorScan"), std::string::npos);

  auto plan = std::move(builder).Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].size(), 4u);
}

TEST(PlanBuilderTest, AggregatePipeline) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1)});
  auto plan = PlanBuilder::FromRows({IntRow({1, 10}), IntRow({1, 5}),
                                     IntRow({2, 3})})
                  .Aggregate(
                      [] {
                        std::vector<ExprPtr> keys;
                        keys.push_back(Col(0));
                        return keys;
                      }(),
                      std::move(aggs))
                  .Sort([] {
                    std::vector<SortKey> keys;
                    keys.push_back({Col(0), true});
                    return keys;
                  }())
                  .Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1].AsInt(), 15);
  EXPECT_EQ((*rows)[1][1].AsInt(), 3);
}

TEST(PlanBuilderTest, AssemblePlanEndToEnd) {
  AcobOptions options;
  options.num_complex_objects = 30;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  PlanBuilder builder =
      PlanBuilder::FromOids((*db)->roots)
          .Assemble(&(*db)->tmpl, (*db)->store.get(),
                    AssemblyOptions{.window_size = 10})
          .Filter(Cmp(CmpOp::kGe, ObjField(Col(0), 0), LitInt(0)));
  AssemblyOperator* assembly = builder.last_assembly();
  ASSERT_NE(assembly, nullptr);
  std::string explain = builder.Explain();
  EXPECT_NE(explain.find("Assembly [elevator, W=10]"), std::string::npos);
  EXPECT_NE(explain.find("OidList [30 roots]"), std::string::npos);

  auto plan = std::move(builder).Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 30u);  // field 0 is always >= 0
  EXPECT_EQ(assembly->stats().complex_emitted, 30u);
}

TEST(PlanBuilderTest, PointerJoinStep) {
  AcobOptions options;
  options.num_complex_objects = 5;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  auto plan = PlanBuilder::FromOids((*db)->roots)
                  .PointerJoin(0, 4, (*db)->store.get())
                  .Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].size(), 6u);  // oid + (oid, 4 fields)
}

TEST(PlanBuilderTest, NestedLoopJoinStep) {
  auto plan =
      PlanBuilder::FromRows({IntRow({1}), IntRow({4})})
          .NestedLoopJoin(PlanBuilder::FromRows({IntRow({2}), IntRow({3})}),
                          Cmp(CmpOp::kLt, Col(0), Col(1)))
          .Build();
  auto rows = DrainAll(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // (1,2) (1,3)
}

}  // namespace
}  // namespace cobra::exec
