// Query clients racing the background page mover (ctest label
// `concurrency`; CI runs it under TSan).
//
// Eight closed-loop clients assemble through a QueryService over AsyncDisk
// and a sharded pool while a ReclusterDaemon — learning from the live disk
// event stream and excluded from write windows via
// QueryService::WithReadLock — relocates the pages under them.  Two
// invariants:
//
//   * no stale or torn delivery: every delivered object is cross-checked
//     against an uncached shadow NaiveAssembler walk over the same pool at
//     delivery time;
//   * attribution stays conserved with the mover as a first-class query:
//     sum(per-query I/O) + mover I/O == global disk/buffer stats, exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "assembly/naive.h"
#include "buffer/buffer_manager.h"
#include "object/assembled_object.h"
#include "object/object_store.h"
#include "service/query_service.h"
#include "storage/async_disk.h"
#include "storage/recluster/affinity.h"
#include "storage/recluster/forwarding.h"
#include "storage/recluster/mover.h"
#include "workload/acob.h"

namespace cobra {
namespace {

using recluster::AffinitySketch;
using recluster::PageForwarding;
using recluster::PageMover;
using recluster::ReclusterDaemon;

void SumInto(obs::QueryIoSnapshot* total, const obs::QueryIoSnapshot& io) {
  total->disk_reads += io.disk_reads;
  total->disk_writes += io.disk_writes;
  total->read_seek_pages += io.read_seek_pages;
  total->write_seek_pages += io.write_seek_pages;
  total->pages_read += io.pages_read;
  total->coalesced_runs += io.coalesced_runs;
  total->buffer_hits += io.buffer_hits;
  total->buffer_faults += io.buffer_faults;
  total->retries += io.retries;
  total->checksum_failures += io.checksum_failures;
}

std::map<Oid, std::vector<int32_t>> FieldsByOid(const AssembledObject* root) {
  std::map<Oid, std::vector<int32_t>> out;
  VisitAssembled(root, [&](const AssembledObject& node) {
    out[node.oid] = node.fields;
  });
  return out;
}

TEST(ReclusterConcurrency, ClientsRaceTheMoverWithConservedAttribution) {
  constexpr size_t kClients = 8;
  constexpr size_t kQueriesPerClient = 12;
  constexpr size_t kRootsPerQuery = 12;

  AcobOptions options;
  options.num_complex_objects = 200;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  PageForwarding fwd;
  AffinitySketch sketch;
  recluster::AffinityDiskListener learner(&sketch, &fwd);
  db->disk->set_listener(&learner);

  std::atomic<uint64_t> objects_checked{0};
  std::atomic<uint64_t> mismatches{0};
  std::mutex diag_mu;
  std::string first_diag;

  obs::QueryIoSnapshot attributed;
  DiskStats disk_stats;
  BufferStats buffer_stats;
  obs::QueryIoSnapshot mover_io;
  uint64_t swaps_applied = 0;
  uint64_t daemon_cycles = 0;
  {
    AsyncDisk async(db->disk.get());
    BufferManager pool(&async,
                       BufferOptions{.num_frames = 4096, .num_shards = 8});
    pool.set_forwarding(&fwd);
    service::ServiceOptions sopts;
    sopts.num_workers = kClients;
    sopts.async_disk = &async;
    service::QueryService service(&pool, db->directory.get(), sopts);

    // Delivery-time shadow: re-assemble the delivered root naively over
    // the same pool (and thus through the same live forwarding table) and
    // compare every scalar.  Runs inside the worker, so a swap committed
    // mid-query must still present each logical page intact.
    auto shadow_check = [&](const AssembledObject& got) {
      ObjectStore shadow_store(&pool, db->directory.get());
      NaiveAssembler shadow(&shadow_store, &db->tmpl);
      ObjectArena arena;
      auto want = shadow.AssembleOne(got.oid, &arena);
      objects_checked.fetch_add(1, std::memory_order_relaxed);
      std::string diag;
      if (!want.ok()) {
        diag = "shadow assembly failed: " + want.status().ToString();
      } else if (*want == nullptr) {
        diag = "shadow rejected root " + std::to_string(got.oid);
      } else if (FieldsByOid(&got) != FieldsByOid(*want)) {
        diag = "STALE READ: root " + std::to_string(got.oid) +
               " differs from shadow assembly";
      }
      if (!diag.empty()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(diag_mu);
        if (first_diag.empty()) first_diag = diag;
      }
    };

    PageMover mover(&pool, &fwd);
    recluster::DaemonOptions dopts;
    dopts.data_first = 0;
    dopts.data_pages = db->data_pages;
    dopts.swaps_per_cycle = 8;
    dopts.cycle_sleep = std::chrono::milliseconds(1);
    dopts.min_observations = 32;
    ReclusterDaemon daemon(&mover, &sketch, &fwd, dopts);
    daemon.set_exclusion([&](const std::function<void()>& fn) {
      service.WithReadLock(fn);
    });
    daemon.Start();

    std::vector<std::thread> clients;
    std::mutex results_mu;
    std::vector<service::QueryResult> results;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937_64 rng(options.seed * 131 + c);
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          service::QueryJob job;
          job.client = "c" + std::to_string(c);
          job.tmpl = &db->tmpl;
          job.assembly.window_size = 16;
          job.assembly.scheduler = SchedulerKind::kElevator;
          job.on_object = shadow_check;
          job.roots.reserve(kRootsPerQuery);
          for (size_t r = 0; r < kRootsPerQuery; ++r) {
            job.roots.push_back(db->roots[rng() % db->roots.size()]);
          }
          service::QueryResult result = service.Submit(std::move(job)).get();
          ASSERT_TRUE(result.status.ok()) << result.status.ToString();
          std::lock_guard<std::mutex> lock(results_mu);
          results.push_back(std::move(result));
        }
      });
    }
    for (std::thread& client : clients) client.join();

    // Let the daemon keep converging the now-quiet layout until it has
    // demonstrably moved pages (the sketch saw every data page fault).
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (mover.stats().swaps_applied == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    daemon.Stop();
    service.Drain();
    async.Drain();

    for (const service::QueryResult& result : results) {
      SumInto(&attributed, result.io);
    }
    SumInto(&attributed, mover.io());
    mover_io = mover.io();
    swaps_applied = mover.stats().swaps_applied;
    daemon_cycles = daemon.cycles();
    disk_stats = db->disk->stats();
    buffer_stats = pool.stats();
  }
  db->disk->set_listener(nullptr);

  EXPECT_EQ(mismatches.load(), 0u) << first_diag;
  EXPECT_EQ(objects_checked.load(),
            kClients * kQueriesPerClient * kRootsPerQuery);
  EXPECT_GT(daemon_cycles, 0u);
  EXPECT_GT(swaps_applied, 0u) << "the mover never relocated a page";
  EXPECT_GT(mover_io.disk_writes, 0u);

  // Conservation with the mover as a synthetic query: per-query sums plus
  // the mover's context account for every global increment exactly.
  EXPECT_EQ(attributed.disk_reads, disk_stats.reads);
  EXPECT_EQ(attributed.disk_writes, disk_stats.writes);
  EXPECT_EQ(attributed.read_seek_pages, disk_stats.read_seek_pages);
  EXPECT_EQ(attributed.write_seek_pages, disk_stats.write_seek_pages);
  EXPECT_EQ(attributed.pages_read, disk_stats.pages_read);
  EXPECT_EQ(attributed.coalesced_runs, disk_stats.coalesced_runs);
  EXPECT_EQ(attributed.buffer_hits, buffer_stats.hits);
  EXPECT_EQ(attributed.buffer_faults, buffer_stats.faults);
}

}  // namespace
}  // namespace cobra
