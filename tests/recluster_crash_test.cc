// Crash-point sweep for WAL'd page moves (ctest label `crash`).
//
// A power cut may land on any disk write of a move batch: mid move-record,
// between the two full-page images of a swap, on the commit record, on a
// checkpoint that snapshots the forwarding table, or on a data write-back
// landing at a freshly swapped address.  After every such cut (dropped and
// torn modes) recovery must leave the database with
//
//   * a forwarding table that is a bijection confined to the data extent
//     (no page lost, none duplicated, nothing remapped into the log);
//   * every acknowledged object readable with its exact committed fields,
//     exactly once, through the recovered table;
//   * idempotent recovery: running it twice yields the identical table
//     and the identical heap contents.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/faulty_disk.h"
#include "storage/recluster/forwarding.h"
#include "storage/recluster/mover.h"
#include "wal/wal.h"

namespace cobra {
namespace {

using recluster::PageForwarding;
using recluster::PageMover;

constexpr PageId kDataFirst = 0;
constexpr size_t kDataPages = 8;
constexpr PageId kLogFirst = 64;
constexpr size_t kLogPages = 128;
constexpr size_t kObjects = 40;

wal::WalOptions LogOptions() {
  wal::WalOptions options;
  options.log_first_page = kLogFirst;
  options.log_max_pages = kLogPages;
  return options;
}

ObjectData MakeObject(Oid oid) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 1;
  obj.fields = {static_cast<int32_t>(1000 + oid), 0, 0, 0};
  obj.refs.assign(8, kInvalidOid);
  return obj;
}

struct Ack {
  bool populate = false;
  int swaps = 0;  // SwapOne calls that returned OK after a durable commit
};

// Populate an object heap, then run a move schedule with a mid-schedule
// checkpoint.  Mirrors the daemon's batch protocol single-threaded so the
// scheduled crash can land on any underlying write.
uint64_t RunMoveWorkload(FaultInjectingDisk* disk, uint64_t crash_after,
                         CrashWriteMode mode, Ack* ack) {
  disk->ScheduleCrash(crash_after, mode);
  {
    PageForwarding fwd;
    wal::WalManager wal(disk, LogOptions());
    wal.set_forwarding(&fwd);
    if (!wal.Recover().ok()) return disk->writes_survived();
    BufferManager buffer(disk, BufferOptions{.num_frames = 32});
    buffer.set_write_gate(&wal);
    buffer.set_forwarding(&fwd);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);
    HashDirectory directory;
    ObjectStore store(&buffer, &directory);
    store.set_wal(&wal);

    std::vector<PageId> data_pages;
    {
      auto t = store.BeginTxn();
      if (!t.ok()) return disk->writes_survived();
      bool ok = true;
      for (Oid oid = 1; ok && oid <= kObjects; ++oid) {
        ok = store.InsertTxn(*t, MakeObject(oid), &file).ok();
      }
      if (!ok) {
        (void)store.AbortTxn(*t);
      } else if (store.CommitTxn(*t).ok()) {
        ack->populate = true;
        for (Oid oid = 1; oid <= kObjects; ++oid) {
          auto loc = store.Locate(oid);
          if (loc.ok()) data_pages.push_back(loc->page);
        }
        std::sort(data_pages.begin(), data_pages.end());
        data_pages.erase(
            std::unique(data_pages.begin(), data_pages.end()),
            data_pages.end());
      }
    }

    if (ack->populate && data_pages.size() >= 2) {
      PageMover mover(&buffer, &fwd);
      mover.set_wal(&wal);
      auto swap = [&](size_t i, size_t j) {
        if (i < data_pages.size() && j < data_pages.size() && i != j &&
            mover.SwapOne(data_pages[i], data_pages[j]).ok()) {
          ack->swaps++;
        }
      };
      swap(0, data_pages.size() - 1);
      swap(1, data_pages.size() / 2);
      // Checkpoint mid-schedule: the forwarding snapshot becomes the
      // recovery baseline; later moves must compose on top of it.
      (void)wal.Checkpoint(&buffer);
      swap(0, 1);
      swap(data_pages.size() - 1, data_pages.size() / 2);
    }
    (void)buffer.FlushAll();
  }
  return disk->writes_survived();
}

struct Recovered {
  std::vector<std::pair<PageId, PageId>> forwarding;
  std::map<Oid, ObjectData> objects;
  std::map<Oid, int> copies;
};

Recovered RecoverAndScan(FaultInjectingDisk* disk) {
  Recovered out;
  PageForwarding fwd;
  wal::WalManager wal(disk, LogOptions());
  wal.set_forwarding(&fwd);
  Status recovered = wal.Recover();
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  if (!recovered.ok()) return out;
  out.forwarding = fwd.Snapshot();

  BufferManager buffer(disk, BufferOptions{.num_frames = 32});
  buffer.set_write_gate(&wal);
  buffer.set_forwarding(&fwd);
  auto file = HeapFile::Open(&buffer, kDataFirst, kDataPages);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  if (!file.ok()) return out;
  auto cursor = file->Scan();
  RecordId rid;
  std::vector<std::byte> record;
  for (;;) {
    auto more = cursor.Next(&rid, &record);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    auto obj = ObjectData::Deserialize(record);
    EXPECT_TRUE(obj.ok()) << obj.status().ToString();
    if (!obj.ok()) break;
    out.objects[obj->oid] = *obj;
    out.copies[obj->oid]++;
  }
  return out;
}

void VerifyRecovered(FaultInjectingDisk* disk, const Ack& ack,
                     const std::string& label) {
  SCOPED_TRACE(label);
  disk->ClearCrash();
  Recovered first = RecoverAndScan(disk);

  // The table is a bijection confined to the data extent: the logical and
  // physical sides of the snapshot are the same page set, once each.
  std::vector<PageId> logicals, physicals;
  for (const auto& [logical, physical] : first.forwarding) {
    EXPECT_LT(logical, kDataFirst + kDataPages);
    EXPECT_LT(physical, kDataFirst + kDataPages);
    logicals.push_back(logical);
    physicals.push_back(physical);
  }
  std::sort(logicals.begin(), logicals.end());
  std::sort(physicals.begin(), physicals.end());
  EXPECT_EQ(logicals, physicals) << "forwarding lost or duplicated a page";
  EXPECT_TRUE(std::adjacent_find(logicals.begin(), logicals.end()) ==
              logicals.end());

  if (ack.populate) {
    for (Oid oid = 1; oid <= kObjects; ++oid) {
      ASSERT_TRUE(first.objects.contains(oid)) << "lost oid " << oid;
      EXPECT_EQ(first.objects.at(oid).fields[0],
                static_cast<int32_t>(1000 + oid));
    }
  }
  for (const auto& [oid, copies] : first.copies) {
    EXPECT_EQ(copies, 1) << "oid " << oid << " appears " << copies
                         << " times";
  }

  // Recovery is idempotent: a second cold start sees the identical table
  // and heap.
  Recovered second = RecoverAndScan(disk);
  EXPECT_EQ(second.forwarding, first.forwarding);
  EXPECT_EQ(second.copies, first.copies);
  for (const auto& [oid, obj] : first.objects) {
    ASSERT_TRUE(second.objects.contains(oid));
    EXPECT_EQ(second.objects.at(oid).fields, obj.fields);
  }
}

void SweepMoveCrashPoints(CrashWriteMode mode, const char* mode_name) {
  uint64_t total_writes = 0;
  {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    total_writes = RunMoveWorkload(&disk, ~uint64_t{0}, mode, &ack);
    ASSERT_TRUE(ack.populate);
    ASSERT_GE(ack.swaps, 3) << "workload must actually move pages";
    ASSERT_FALSE(disk.crash_triggered());
    VerifyRecovered(&disk, ack, std::string(mode_name) + " uncrashed");
  }
  ASSERT_GT(total_writes, 10u) << "workload too small to be interesting";

  // The group-commit daemon's batching varies by a write or two with
  // thread scheduling; a tail point may not exist as a boundary in a given
  // run (the workload then completed and is verified uncrashed).  Nearly
  // all points must still trigger.
  uint64_t unused_points = 0;
  for (uint64_t n = 0; n < total_writes; ++n) {
    FaultInjectingDisk disk(FaultProfile{});
    Ack ack;
    RunMoveWorkload(&disk, n, mode, &ack);
    if (!disk.crash_triggered()) ++unused_points;
    VerifyRecovered(&disk, ack,
                    std::string(mode_name) + " crash after " +
                        std::to_string(n) + " writes");
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_LE(unused_points, total_writes / 4)
      << "sweep barely crashed: write counts diverged wildly across runs";
}

TEST(ReclusterCrash, DropWriteSweepRecoversMoves) {
  SweepMoveCrashPoints(CrashWriteMode::kDropWrite, "drop");
}

TEST(ReclusterCrash, TornWriteSweepRecoversMoves) {
  SweepMoveCrashPoints(CrashWriteMode::kTornWrite, "torn");
}

}  // namespace
}  // namespace cobra
