// Telemetry-driven online re-clustering (storage/recluster/): the
// forwarding algebra, the planner's permutation guarantees, buffer-level
// translation, the bounded affinity sketch, the mover's content/cache
// behavior, and the end-to-end seek-convergence property the subsystem
// exists for.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "assembly/assembly_operator.h"
#include "buffer/buffer_manager.h"
#include "cache/cached_assembly.h"
#include "cache/object_cache.h"
#include "exec/scan.h"
#include "storage/disk.h"
#include "storage/placement.h"
#include "storage/recluster/affinity.h"
#include "storage/recluster/forwarding.h"
#include "storage/recluster/mover.h"
#include "storage/recluster/planner.h"
#include "workload/acob.h"

namespace cobra {
namespace {

using exec::Row;
using exec::Value;
using exec::VectorScan;
using recluster::AffinitySketch;
using recluster::LayoutPlan;
using recluster::PageForwarding;
using recluster::PageMover;
using recluster::PlanLayout;

// Asserts the table is a bijection on [0, n): both directions compose to
// the identity and the physical image is a permutation of the domain.
void ExpectBijection(const PageForwarding& fwd, PageId n) {
  std::set<PageId> image;
  for (PageId p = 0; p < n; ++p) {
    PageId phys = fwd.ToPhysical(p);
    EXPECT_EQ(fwd.ToLogical(phys), p) << "page " << p;
    EXPECT_LT(phys, n) << "page " << p << " mapped outside the extent";
    image.insert(phys);
  }
  EXPECT_EQ(image.size(), static_cast<size_t>(n));
}

TEST(Forwarding, RandomSwapScheduleStaysBijective) {
  constexpr PageId kPages = 64;
  std::mt19937_64 rng(7);
  PageForwarding fwd;
  uint64_t real_swaps = 0;  // a == b is a counted-nowhere no-op
  for (int step = 0; step < 500; ++step) {
    PageId a = rng() % kPages;
    PageId b = rng() % kPages;
    fwd.SwapPhysical(a, b);
    if (a != b) ++real_swaps;
    if (step % 50 == 0) ExpectBijection(fwd, kPages);
  }
  ExpectBijection(fwd, kPages);
  EXPECT_EQ(fwd.swaps(), real_swaps);
  fwd.Clear();
  EXPECT_TRUE(fwd.empty());
  for (PageId p = 0; p < kPages; ++p) {
    EXPECT_EQ(fwd.ToPhysical(p), p);
    EXPECT_EQ(fwd.ToLogical(p), p);
  }
}

TEST(Forwarding, InstallDisplacesOccupantAndStaysBijective) {
  constexpr PageId kPages = 32;
  PageForwarding fwd;
  // Install 5 at slot 9: the displaced occupant of slot 9 (logical 9 under
  // identity) must take 5's old slot.
  fwd.Install(5, 9);
  EXPECT_EQ(fwd.ToPhysical(5), 9u);
  EXPECT_EQ(fwd.ToPhysical(9), 5u);
  ExpectBijection(fwd, kPages);

  std::mt19937_64 rng(11);
  for (int step = 0; step < 300; ++step) {
    fwd.Install(rng() % kPages, rng() % kPages);
  }
  ExpectBijection(fwd, kPages);

  // Snapshot round-trips through Install (recovery's checkpoint path).
  auto snapshot = fwd.Snapshot();
  PageForwarding rebuilt;
  for (const auto& [logical, physical] : snapshot) {
    rebuilt.Install(logical, physical);
  }
  for (PageId p = 0; p < kPages; ++p) {
    EXPECT_EQ(rebuilt.ToPhysical(p), fwd.ToPhysical(p)) << "page " << p;
  }
}

// Feeds one synthetic fault epoch (query 0 touching `order` in sequence)
// into a sketch.
void ObserveEpoch(AffinitySketch* sketch, const std::vector<PageId>& order) {
  for (PageId page : order) sketch->ObserveRead(0, page, 3, 1);
  sketch->EndEpoch();
}

TEST(Planner, RealizesFaultOrderAndAnyPrefixIsValid) {
  constexpr PageId kPages = 40;
  std::mt19937_64 rng(23);
  for (int round = 0; round < 20; ++round) {
    std::vector<PageId> order(kPages);
    for (PageId p = 0; p < kPages; ++p) order[p] = p;
    std::shuffle(order.begin(), order.end(), rng);

    AffinitySketch sketch;
    ObserveEpoch(&sketch, order);
    PageForwarding fwd;
    LayoutPlan plan = PlanLayout(sketch, fwd, 0, kPages);
    EXPECT_EQ(plan.chains, 1u);
    EXPECT_EQ(plan.pages_planned, static_cast<size_t>(kPages));

    // Any prefix leaves a bijection (the mover is rate-limited and may
    // stop anywhere).
    size_t prefix = rng() % (plan.swaps.size() + 1);
    PageForwarding partial;
    for (size_t i = 0; i < prefix; ++i) {
      partial.SwapPhysical(plan.swaps[i].first, plan.swaps[i].second);
    }
    ExpectBijection(partial, kPages);

    // The full schedule lays the fault order out physically ascending.
    PageForwarding full;
    for (const auto& [a, b] : plan.swaps) full.SwapPhysical(a, b);
    ExpectBijection(full, kPages);
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_EQ(full.ToPhysical(order[i]), full.ToPhysical(order[i - 1]) + 1)
          << "fault step " << i;
    }

    // Replanning a converged layout is the identity: the loop is
    // idempotent, not oscillating.
    AffinitySketch again;
    ObserveEpoch(&again, order);
    EXPECT_TRUE(PlanLayout(again, full, 0, kPages).swaps.empty());
  }
}

TEST(Planner, NeverTouchesPagesOutsideTheDataExtent) {
  AffinitySketch sketch;
  // Fault order mixing data pages [10, 20) with out-of-extent pages (a
  // WAL log tail at 100+, a catalog page at 3).
  ObserveEpoch(&sketch, {12, 100, 15, 3, 11, 101, 17, 14, 19, 10});
  PageForwarding fwd;
  LayoutPlan plan = PlanLayout(sketch, fwd, 10, 10);
  EXPECT_FALSE(plan.swaps.empty());
  for (const auto& [a, b] : plan.swaps) {
    EXPECT_GE(a, 10u);
    EXPECT_LT(a, 20u);
    EXPECT_GE(b, 10u);
    EXPECT_LT(b, 20u);
  }
}

TEST(Planner, ComposesWithStripedPlacementPerSpindleMonotone) {
  // The plan relabels which logical page occupies which physical address;
  // the placement policy still inverts every address, and because the
  // fault order is dealt into ascending physical slots, each spindle sees
  // its share of the sweep in ascending offset order.
  constexpr PageId kPages = 64;
  DiskGeometry geometry;
  geometry.spindles = 4;
  geometry.stripe_width = 2;
  PlacementPolicy placement(geometry);

  std::mt19937_64 rng(31);
  std::vector<PageId> order(kPages);
  for (PageId p = 0; p < kPages; ++p) order[p] = p;
  std::shuffle(order.begin(), order.end(), rng);

  AffinitySketch sketch;
  ObserveEpoch(&sketch, order);
  PageForwarding fwd;
  LayoutPlan plan = PlanLayout(sketch, fwd, 0, kPages);
  for (const auto& [a, b] : plan.swaps) fwd.SwapPhysical(a, b);

  std::map<uint32_t, PageId> last_offset;
  for (PageId logical : order) {
    PageId phys = fwd.ToPhysical(logical);
    SpindleSlot slot = placement.Resolve(phys);
    EXPECT_EQ(placement.PageAt(slot.spindle, slot.offset), phys);
    auto it = last_offset.find(slot.spindle);
    if (it != last_offset.end()) {
      EXPECT_GE(slot.offset, it->second)
          << "spindle " << slot.spindle << " sweep went backward";
    }
    last_offset[slot.spindle] = slot.offset;
  }
}

TEST(Buffer, TranslatesAtTheDiskBoundaryUnderEvictionPressure) {
  constexpr PageId kPages = 8;
  SimulatedDisk disk;
  PageForwarding fwd;
  fwd.SwapPhysical(0, 5);
  fwd.SwapPhysical(2, 7);
  fwd.SwapPhysical(1, 6);

  {
    // Two frames force eviction on nearly every fetch: every page round-
    // trips the disk through the translated address.
    BufferManager pool(&disk, BufferOptions{.num_frames = 2});
    pool.set_forwarding(&fwd);
    for (PageId p = 0; p < kPages; ++p) {
      auto guard = pool.CreatePage(p);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      std::memset(guard->data().data(), static_cast<int>(0x40 + p),
                  disk.page_size());
      guard->MarkDirty();
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    for (PageId p = 0; p < kPages; ++p) {
      auto guard = pool.FetchPage(p);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      EXPECT_EQ(guard->data()[7], static_cast<std::byte>(0x40 + p))
          << "logical page " << p;
    }
  }

  // The bytes physically live at the forwarded addresses.
  std::vector<std::byte> raw(disk.page_size());
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_TRUE(disk.ReadPage(fwd.ToPhysical(p), raw.data()).ok());
    EXPECT_EQ(raw[7], static_cast<std::byte>(0x40 + p)) << "page " << p;
  }
}

TEST(Sketch, StaysBoundedUnderDistinctEdgeFlood) {
  AffinitySketch sketch(recluster::AffinityOptions{.max_edges = 8});
  for (PageId p = 0; p < 400; p += 2) {
    sketch.ObserveRead(0, p, 1, 1);
    sketch.ObserveRead(0, p + 1, 1, 1);
    sketch.EndEpoch();  // one distinct (p, p+1) edge per epoch
  }
  EXPECT_GT(sketch.decays(), 0u);
  EXPECT_LT(sketch.edge_count(), 16u);  // lossy counting holds the line
  EXPECT_EQ(sketch.observations(), 400u);
}

std::unique_ptr<VectorScan> RootScan(const std::vector<Oid>& roots) {
  std::vector<Row> rows;
  for (Oid oid : roots) rows.push_back(Row{Value::Ref(oid)});
  return std::make_unique<VectorScan>(std::move(rows));
}

// One full assembly sweep; returns every delivered scalar keyed by OID so
// epochs can be compared for content identity.
std::map<Oid, std::vector<int32_t>> AssembleAll(AcobDatabase* db,
                                                AssemblyStats* stats,
                                                DiskStats* disk) {
  AssemblyOptions options;
  options.window_size = 50;
  options.scheduler = SchedulerKind::kElevator;
  AssemblyOperator op(RootScan(db->roots), &db->tmpl, db->store.get(),
                      options);
  EXPECT_TRUE(op.Open().ok());
  std::map<Oid, std::vector<int32_t>> delivered;
  exec::RowBatch batch;
  for (;;) {
    auto n = op.NextBatch(&batch);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    if (!n.ok() || *n == 0) break;
    for (size_t i = 0; i < *n; ++i) {
      VisitAssembled(batch[i][0].AsObject(),
                     [&](const AssembledObject& node) {
                       delivered[node.oid] = node.fields;
                     });
    }
  }
  if (stats != nullptr) *stats = op.stats();
  if (disk != nullptr) *disk = db->disk->stats();
  (void)op.Close();
  return delivered;
}

TEST(Mover, SwapsRelocateWithoutChangingContentAndInvalidateTheCache) {
  AcobOptions options;
  options.num_complex_objects = 20;
  options.clustering = Clustering::kUnclustered;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto db = std::move(*built);
  PageForwarding fwd;
  db->forwarding = &fwd;
  ASSERT_TRUE(db->ColdRestart().ok());

  auto before = AssembleAll(db.get(), nullptr, nullptr);
  ASSERT_FALSE(before.empty());

  // Warm an object cache over the same store, then move pages under it.
  cache::ObjectCache cache;
  auto warmed = cache::AssembleThroughCache(&cache, &db->tmpl,
                                            db->store.get(), db->roots,
                                            AssemblyOptions{}, 8, nullptr);
  ASSERT_TRUE(warmed.status.ok());
  ASSERT_GT(cache.resident_entries(), 0u);

  PageMover mover(db->buffer.get(), &fwd);
  mover.set_cache(&cache);
  ASSERT_GE(db->data_pages, 4u);
  ASSERT_TRUE(mover.SwapOne(0, db->data_pages - 1).ok());
  ASSERT_TRUE(mover.SwapOne(1, db->data_pages - 2).ok());
  auto stats = mover.stats();
  EXPECT_EQ(stats.swaps_applied, 2u);
  EXPECT_EQ(stats.pages_moved, 4u);
  EXPECT_GT(cache.stats().invalidations, 0u);
  EXPECT_EQ(fwd.ToPhysical(0), db->data_pages - 1);

  // Relocation is invisible above the buffer: identical delivery, both
  // through the warm pool and after a cold restart re-attaches the table.
  EXPECT_EQ(AssembleAll(db.get(), nullptr, nullptr), before);
  ASSERT_TRUE(db->ColdRestart().ok());
  EXPECT_EQ(AssembleAll(db.get(), nullptr, nullptr), before);
}

TEST(Recluster, EndToEndSeekPagesConvergeTowardClustered) {
  AcobOptions options;
  options.num_complex_objects = 200;
  options.clustering = Clustering::kUnclustered;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto db = std::move(*built);
  PageForwarding fwd;
  db->forwarding = &fwd;

  AffinitySketch sketch;
  recluster::AffinityDiskListener learner(&sketch, &fwd);

  // Epoch 0: measure the unclustered layout while the sketch listens.
  ASSERT_TRUE(db->ColdRestart().ok());
  db->disk->set_listener(&learner);
  DiskStats epoch0;
  auto before = AssembleAll(db.get(), nullptr, &epoch0);
  db->disk->set_listener(nullptr);
  sketch.EndEpoch();
  ASSERT_GT(epoch0.read_seek_pages, 0u);

  // Move: apply the whole plan (unit tests need not rate-limit).
  LayoutPlan plan = PlanLayout(sketch, fwd, 0, db->data_pages);
  ASSERT_FALSE(plan.swaps.empty());
  PageMover mover(db->buffer.get(), &fwd);
  size_t cursor = 0;
  while (cursor < plan.swaps.size()) {
    auto applied = mover.ExecuteBatch(plan, &cursor);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }

  // Epoch 1: same logical fault order, near-sequential physical sweep.
  ASSERT_TRUE(db->ColdRestart().ok());
  DiskStats epoch1;
  auto after = AssembleAll(db.get(), nullptr, &epoch1);
  EXPECT_EQ(after, before);  // relocation never changes delivered content
  EXPECT_EQ(epoch1.reads, epoch0.reads);
  // Converged means the fault order became a sequential physical sweep:
  // about one page of head travel per read (the floor), not merely better
  // than before.
  EXPECT_LE(epoch1.read_seek_pages, epoch1.reads + 8)
      << "re-clustering should collapse head travel to ~1 page/read "
      << "(epoch0=" << epoch0.read_seek_pages
      << ", epoch1=" << epoch1.read_seek_pages
      << ", reads=" << epoch1.reads << ")";
  EXPECT_LT(epoch1.read_seek_pages, epoch0.read_seek_pages / 3);
  // The mover's I/O was charged to its own synthetic query context.
  EXPECT_GT(mover.io().disk_writes, 0u);
}

}  // namespace
}  // namespace cobra
