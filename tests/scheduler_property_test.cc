// Property-based coverage of the elevator orderings: the per-query
// ElevatorScheduler (assembly/scheduler.h), its PeekPages read-ahead view,
// and the cross-client ElevatorIoQueue (storage/async_disk.h).  All inputs
// come from a fixed-seed generator, so failures replay exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "assembly/scheduler.h"
#include "storage/async_disk.h"

namespace cobra {
namespace {

// Serves every queued request, returning the visit order and accumulating
// |page - head| travel — the simulated disk's cost model, with the head
// following each served request as it does on the real device.
std::vector<PageId> DrainQueue(ElevatorIoQueue* queue,
                               const std::map<uint64_t, PageId>& pages,
                               PageId head, uint64_t* travel) {
  std::vector<PageId> order;
  while (!queue->empty()) {
    auto ticket = queue->PopNext(head);
    if (!ticket.has_value()) {
      ADD_FAILURE() << "non-empty queue returned nothing";
      break;
    }
    PageId page = pages.at(*ticket);
    *travel += page >= head ? page - head : head - page;
    head = page;
    order.push_back(page);
  }
  return order;
}

std::vector<PageId> RandomPages(std::mt19937_64* rng, size_t max_count,
                                PageId max_page) {
  std::uniform_int_distribution<size_t> count_dist(1, max_count);
  std::uniform_int_distribution<PageId> page_dist(0, max_page);
  std::vector<PageId> pages(count_dist(*rng));
  for (PageId& page : pages) page = page_dist(*rng);
  return pages;
}

TEST(ElevatorIoQueueProperty, EveryRequestServedExactlyOnce) {
  std::mt19937_64 rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 64, 500);
    ElevatorIoQueue queue;
    std::map<uint64_t, PageId> by_ticket;
    for (uint64_t ticket = 0; ticket < pages.size(); ++ticket) {
      queue.Push(pages[ticket], ticket);
      by_ticket[ticket] = pages[ticket];
    }
    PageId head = std::uniform_int_distribution<PageId>(0, 500)(rng);
    std::set<uint64_t> served;
    while (!queue.empty()) {
      auto ticket = queue.PopNext(head);
      ASSERT_TRUE(ticket.has_value());
      EXPECT_TRUE(served.insert(*ticket).second)
          << "ticket " << *ticket << " served twice (trial " << trial << ")";
      head = by_ticket.at(*ticket);
    }
    EXPECT_EQ(served.size(), pages.size()) << "trial " << trial;
    EXPECT_FALSE(queue.PopNext(head).has_value());
  }
}

TEST(ElevatorIoQueueProperty, ExactlyOnceUnderInterleavedArrivals) {
  // Requests arrive while earlier ones are being served — the actual
  // AsyncDisk regime.  Every ticket must still be served exactly once.
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    ElevatorIoQueue queue;
    std::map<uint64_t, PageId> by_ticket;
    std::set<uint64_t> served;
    uint64_t next_ticket = 0;
    PageId head = 0;
    std::uniform_int_distribution<PageId> page_dist(0, 300);
    for (int step = 0; step < 150; ++step) {
      if (queue.empty() || rng() % 2 == 0) {
        PageId page = page_dist(rng);
        by_ticket[next_ticket] = page;
        queue.Push(page, next_ticket++);
      } else {
        auto ticket = queue.PopNext(head);
        ASSERT_TRUE(ticket.has_value());
        EXPECT_TRUE(served.insert(*ticket).second);
        head = by_ticket.at(*ticket);
      }
    }
    while (!queue.empty()) {
      auto ticket = queue.PopNext(head);
      ASSERT_TRUE(ticket.has_value());
      EXPECT_TRUE(served.insert(*ticket).second);
      head = by_ticket.at(*ticket);
    }
    EXPECT_EQ(served.size(), next_ticket) << "trial " << trial;
  }
}

TEST(ElevatorIoQueueProperty, FifoAmongRequestsForTheSamePage) {
  ElevatorIoQueue queue;
  for (uint64_t ticket = 0; ticket < 5; ++ticket) {
    queue.Push(/*page=*/7, ticket);
  }
  for (uint64_t expected = 0; expected < 5; ++expected) {
    auto ticket = queue.PopNext(/*head=*/7);
    ASSERT_TRUE(ticket.has_value());
    EXPECT_EQ(*ticket, expected);
  }
}

TEST(ElevatorIoQueueProperty, MergedColdStartNeverCostsMoreThanPerClient) {
  // The bench's comparison (bench/multi_client.cc): K clients' request sets
  // served by one merged SCAN from a parked head vs. each client's own SCAN
  // from its own cold start (ColdRestart parks the head at page 0).  From
  // the disk's lowest position a SCAN serves everything in one ascending
  // sweep, so the merged pass travels max(union) while the separate passes
  // travel sum(max(client_i)) — merging can only help.  (From a mid-disk
  // head the online SCAN holds no such guarantee: a tiny client below the
  // head can be forced behind another client's long up-sweep.)
  std::mt19937_64 rng(987654321);
  for (int trial = 0; trial < 200; ++trial) {
    size_t num_clients = std::uniform_int_distribution<size_t>(2, 6)(rng);
    uint64_t merged_travel = 0;
    uint64_t separate_travel = 0;
    ElevatorIoQueue merged;
    std::map<uint64_t, PageId> merged_pages;
    uint64_t next_ticket = 0;
    size_t total_requests = 0;
    for (size_t c = 0; c < num_clients; ++c) {
      std::vector<PageId> pages = RandomPages(&rng, 40, 2000);
      total_requests += pages.size();
      ElevatorIoQueue own;
      std::map<uint64_t, PageId> own_pages;
      for (uint64_t t = 0; t < pages.size(); ++t) {
        own.Push(pages[t], t);
        own_pages[t] = pages[t];
        merged.Push(pages[t], next_ticket);
        merged_pages[next_ticket++] = pages[t];
      }
      DrainQueue(&own, own_pages, /*head=*/0, &separate_travel);
    }
    std::vector<PageId> order =
        DrainQueue(&merged, merged_pages, /*head=*/0, &merged_travel);
    EXPECT_LE(merged_travel, separate_travel) << "trial " << trial;
    EXPECT_EQ(order.size(), total_requests);
    // From the parked head the merged pass is one ascending sweep.
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << "trial " << trial;
  }
}

TEST(ElevatorIoQueueProperty, TravelBoundedByTwoSweeps) {
  // SCAN reverses at most twice for a static request set: total travel
  // never exceeds twice the span of the visited region (head included).
  std::mt19937_64 rng(1357);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 50, 4000);
    PageId head = std::uniform_int_distribution<PageId>(0, 4000)(rng);
    ElevatorIoQueue queue;
    std::map<uint64_t, PageId> by_ticket;
    for (uint64_t t = 0; t < pages.size(); ++t) {
      queue.Push(pages[t], t);
      by_ticket[t] = pages[t];
    }
    uint64_t travel = 0;
    DrainQueue(&queue, by_ticket, head, &travel);
    PageId lo = std::min(head, *std::min_element(pages.begin(), pages.end()));
    PageId hi = std::max(head, *std::max_element(pages.begin(), pages.end()));
    EXPECT_LE(travel, 2 * (hi - lo)) << "trial " << trial;
  }
}

// ------------------------------------------------- vectored PopRun (queue)

TEST(ElevatorIoQueueRunProperty, EveryTicketServedExactlyOnceAcrossRuns) {
  std::mt19937_64 rng(5550123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 64, 300);
    size_t max_run =
        std::uniform_int_distribution<size_t>(1, 16)(rng);
    ElevatorIoQueue queue;
    std::map<uint64_t, PageId> by_ticket;
    for (uint64_t ticket = 0; ticket < pages.size(); ++ticket) {
      queue.Push(pages[ticket], ticket);
      by_ticket[ticket] = pages[ticket];
    }
    PageId head = std::uniform_int_distribution<PageId>(0, 300)(rng);
    std::set<uint64_t> served;
    while (!queue.empty()) {
      auto run = queue.PopRun(head, max_run);
      ASSERT_TRUE(run.has_value());
      ASSERT_FALSE(run->tickets.empty());
      for (const auto& [page, ticket] : run->tickets) {
        EXPECT_EQ(by_ticket.at(ticket), page);
        EXPECT_TRUE(served.insert(ticket).second)
            << "ticket " << ticket << " served twice (trial " << trial << ")";
      }
      head = run->tickets.back().first;
    }
    EXPECT_EQ(served.size(), pages.size()) << "trial " << trial;
  }
}

TEST(ElevatorIoQueueRunProperty, RunsAreAdjacentDirectedAndBounded) {
  // Device-level runs are strictly adjacent (no gap bridging below the
  // buffer pool: a filler page would be transferred and thrown away), move
  // only with the sweep direction, and never exceed max_run_pages — so a
  // run can never span a sweep reversal.
  std::mt19937_64 rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 64, 120);
    size_t max_run = std::uniform_int_distribution<size_t>(1, 8)(rng);
    ElevatorIoQueue queue;
    for (uint64_t ticket = 0; ticket < pages.size(); ++ticket) {
      queue.Push(pages[ticket], ticket);
    }
    PageId head = std::uniform_int_distribution<PageId>(0, 120)(rng);
    while (!queue.empty()) {
      auto run = queue.PopRun(head, max_run);
      ASSERT_TRUE(run.has_value());
      EXPECT_GE(run->pages, 1u);
      EXPECT_LE(run->pages, max_run) << "trial " << trial;
      // Transfer order is consecutive in the run direction, starting at the
      // sweep's entry page.
      PageId prev = run->ascending ? run->first
                                   : run->first + (run->pages - 1);
      bool first_ticket = true;
      for (const auto& [page, ticket] : run->tickets) {
        (void)ticket;
        if (first_ticket) {
          EXPECT_EQ(page, prev) << "trial " << trial;
          first_ticket = false;
        } else {
          EXPECT_TRUE(page == prev ||
                      page == (run->ascending ? PageId(prev + 1)
                                              : PageId(prev - 1)))
              << "trial " << trial;
        }
        prev = page;
      }
      head = prev;
    }
  }
}

TEST(ElevatorIoQueueRunProperty, MaxRunOneDegeneratesToSinglePops) {
  std::mt19937_64 rng(31415);
  std::vector<PageId> pages = RandomPages(&rng, 64, 200);
  // Distinct pages: same-page waiters pop oldest-first from PopRun but
  // keep PopNext's historical within-page order, so ticket-level equality
  // only holds page-by-page.
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  std::shuffle(pages.begin(), pages.end(), rng);
  ElevatorIoQueue a;
  ElevatorIoQueue b;
  for (uint64_t ticket = 0; ticket < pages.size(); ++ticket) {
    a.Push(pages[ticket], ticket);
    b.Push(pages[ticket], ticket);
  }
  PageId head_a = 50;
  PageId head_b = 50;
  while (!a.empty()) {
    auto run = a.PopRun(head_a, 1);
    auto single = b.PopNext(head_b);
    ASSERT_TRUE(run.has_value());
    ASSERT_TRUE(single.has_value());
    ASSERT_EQ(run->tickets.size(), 1u);
    EXPECT_EQ(run->tickets[0].second, *single);
    head_a = run->tickets[0].first;
    head_b = head_a;
  }
  EXPECT_TRUE(b.empty());
}

TEST(ElevatorIoQueueRunProperty, WritesServeAloneAndBarrierEntryPageReads) {
  ElevatorIoQueue queue;
  queue.Push(/*page=*/7, /*ticket=*/0, /*is_read=*/true);
  queue.Push(/*page=*/7, /*ticket=*/1, /*is_read=*/false);  // write barrier
  queue.Push(/*page=*/7, /*ticket=*/2, /*is_read=*/true);
  queue.Push(/*page=*/8, /*ticket=*/3, /*is_read=*/true);

  // First run: the entry page's read prefix stops at the queued write, then
  // the run extends into the all-read neighbor page.
  auto run = queue.PopRun(/*head=*/7, /*max_run_pages=*/8);
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->is_read);
  ASSERT_EQ(run->tickets.size(), 2u);
  EXPECT_EQ(run->tickets[0].second, 0u);
  EXPECT_EQ(run->tickets[1].second, 3u);

  // The write is served alone, even with a read queued behind it.
  run = queue.PopRun(/*head=*/8, /*max_run_pages=*/8);
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(run->is_read);
  ASSERT_EQ(run->tickets.size(), 1u);
  EXPECT_EQ(run->tickets[0].second, 1u);

  run = queue.PopRun(/*head=*/7, /*max_run_pages=*/8);
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->is_read);
  ASSERT_EQ(run->tickets.size(), 1u);
  EXPECT_EQ(run->tickets[0].second, 2u);
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------- scheduler PeekPages

PendingRef MakeRef(PageId page) {
  PendingRef ref;
  ref.page = page;
  return ref;
}

TEST(ElevatorSchedulerProperty, PeekPagesMatchesActualPopOrder) {
  // PeekPages must predict the distinct-page visit order Pop produces when
  // the head follows each fetched page (how assembly drives it), without
  // consuming anything.
  std::mt19937_64 rng(24680);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 30, 400);
    ElevatorScheduler scheduler;
    std::vector<PendingRef> batch;
    for (PageId page : pages) batch.push_back(MakeRef(page));
    scheduler.AddBatch(batch, /*is_root=*/true);

    PageId head = std::uniform_int_distribution<PageId>(0, 400)(rng);
    std::vector<PageId> predicted = scheduler.PeekPages(head, pages.size());

    std::vector<PageId> actual;
    PageId arm = head;
    while (!scheduler.Empty()) {
      PendingRef ref = scheduler.Pop(arm);
      if (actual.empty() || actual.back() != ref.page) {
        actual.push_back(ref.page);
      }
      arm = ref.page;
    }
    EXPECT_EQ(predicted, actual) << "trial " << trial << " head " << head;
  }
}

TEST(ElevatorSchedulerProperty, PeekPagesIsNonMutatingAndBounded) {
  ElevatorScheduler scheduler;
  std::vector<PendingRef> batch = {MakeRef(10), MakeRef(20), MakeRef(30)};
  scheduler.AddBatch(batch, /*is_root=*/true);
  EXPECT_EQ(scheduler.PeekPages(0, 2).size(), 2u);
  EXPECT_EQ(scheduler.PeekPages(0, 99).size(), 3u);
  EXPECT_TRUE(scheduler.PeekPages(0, 0).empty());
  EXPECT_EQ(scheduler.Size(), 3u);  // peeking consumed nothing
  // Base Scheduler interface: non-positional schedulers answer empty.
  DepthFirstScheduler depth_first;
  depth_first.AddBatch(batch, /*is_root=*/true);
  EXPECT_TRUE(depth_first.PeekPages(0, 8).empty());
}

// ------------------------------------------- vectored PopRun (scheduler)

TEST(ElevatorSchedulerRunProperty, EveryRefResolvedExactlyOnceAcrossRuns) {
  std::mt19937_64 rng(8675309);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PageId> pages = RandomPages(&rng, 60, 250);
    size_t max_run = std::uniform_int_distribution<size_t>(1, 16)(rng);
    ElevatorScheduler scheduler;
    std::vector<PendingRef> batch;
    for (size_t i = 0; i < pages.size(); ++i) {
      PendingRef ref = MakeRef(pages[i]);
      ref.complex_id = i;  // unique tag to track exactly-once
      batch.push_back(ref);
    }
    scheduler.AddBatch(batch, /*is_root=*/true);
    PageId head = std::uniform_int_distribution<PageId>(0, 250)(rng);
    std::set<uint64_t> resolved;
    while (!scheduler.Empty()) {
      RefRun run = scheduler.PopRun(head, max_run);
      ASSERT_FALSE(run.refs.empty());
      EXPECT_GE(run.pages, 1u);
      EXPECT_LE(run.pages, max_run) << "trial " << trial;
      const PageId last_page = run.first_page + (run.pages - 1);
      PageId prev = run.ascending ? run.first_page : last_page;
      for (const PendingRef& ref : run.refs) {
        EXPECT_TRUE(resolved.insert(ref.complex_id).second)
            << "ref resolved twice (trial " << trial << ")";
        // refs come grouped by page in transfer order.
        EXPECT_GE(ref.page, run.first_page);
        EXPECT_LE(ref.page, last_page);
        if (run.ascending) {
          EXPECT_GE(ref.page, prev);
        } else {
          EXPECT_LE(ref.page, prev);
        }
        prev = ref.page;
      }
      // A span never speculates: both endpoints carry references.
      EXPECT_EQ(run.ascending ? run.refs.front().page
                              : run.refs.back().page,
                run.first_page);
      EXPECT_EQ(run.ascending ? run.refs.back().page
                              : run.refs.front().page,
                last_page);
      head = run.ascending ? last_page : run.first_page;
    }
    EXPECT_EQ(resolved.size(), pages.size()) << "trial " << trial;
  }
}

TEST(ElevatorSchedulerRunProperty, BridgedGapsStayWithinTheSpanBudget) {
  // Pages 10 and 14 pend with a 3-page gap: an 8-page budget bridges them
  // into one span, a 4-page budget cannot (span would be 5).
  for (auto [budget, want_pages] : {std::pair<size_t, size_t>{8, 5},
                                    std::pair<size_t, size_t>{4, 1}}) {
    ElevatorScheduler scheduler;
    scheduler.AddBatch({MakeRef(10), MakeRef(14)}, /*is_root=*/true);
    RefRun run = scheduler.PopRun(/*head=*/0, budget);
    EXPECT_EQ(run.first_page, 10u);
    EXPECT_EQ(run.pages, want_pages);
    EXPECT_EQ(run.refs.size(), want_pages == 5 ? 2u : 1u);
  }
}

TEST(ElevatorSchedulerRunProperty, RunNeverSpansASweepReversal) {
  // Head between two pending pages, sweeping up: the run takes the upper
  // page only; the lower page waits for the reversal even though it is
  // within the span budget.
  ElevatorScheduler scheduler;
  scheduler.AddBatch({MakeRef(8), MakeRef(12)}, /*is_root=*/true);
  RefRun up = scheduler.PopRun(/*head=*/10, /*max_run_pages=*/16);
  EXPECT_TRUE(up.ascending);
  EXPECT_EQ(up.first_page, 12u);
  EXPECT_EQ(up.pages, 1u);
  RefRun down = scheduler.PopRun(/*head=*/12, /*max_run_pages=*/16);
  EXPECT_FALSE(down.ascending);
  EXPECT_EQ(down.first_page, 8u);
  EXPECT_EQ(down.pages, 1u);
  EXPECT_TRUE(scheduler.Empty());
}

TEST(ElevatorSchedulerRunProperty, DefaultSchedulersPopSingleRefRuns) {
  // Position-blind schedulers keep their historical one-ref-at-a-time
  // order under PopRun, whatever the budget.
  DepthFirstScheduler depth_first;
  depth_first.AddBatch({MakeRef(30), MakeRef(20), MakeRef(10)},
                       /*is_root=*/true);
  RefRun run = depth_first.PopRun(/*head=*/0, /*max_run_pages=*/8);
  ASSERT_EQ(run.refs.size(), 1u);
  EXPECT_EQ(run.refs[0].page, 30u);
  EXPECT_EQ(run.pages, 1u);
  EXPECT_EQ(run.first_page, 30u);
}

}  // namespace
}  // namespace cobra
