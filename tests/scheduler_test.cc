#include <vector>

#include <gtest/gtest.h>

#include "assembly/scheduler.h"

namespace cobra {
namespace {

PendingRef Ref(uint64_t complex_id, Oid oid, PageId page,
               bool shared_owned = false) {
  PendingRef ref;
  ref.complex_id = complex_id;
  ref.oid = oid;
  ref.page = page;
  ref.shared_owned = shared_owned;
  return ref;
}

std::vector<Oid> DrainOids(Scheduler* scheduler, PageId head = 0) {
  std::vector<Oid> out;
  while (!scheduler->Empty()) {
    out.push_back(scheduler->Pop(head).oid);
  }
  return out;
}

// ------------------------------------------------------------ depth-first

TEST(DepthFirstSchedulerTest, PaperFigure4Order) {
  // Figure 4 objects, window of 2: depth-first resolves "A1, B1, D1, C1,
  // A2, ..." — one complex object at a time.
  DepthFirstScheduler s;
  s.AddBatch({Ref(1, /*A1*/ 101, 0)}, /*is_root=*/true);
  s.AddBatch({Ref(2, /*A2*/ 201, 0)}, /*is_root=*/true);
  EXPECT_EQ(s.Pop(0).oid, 101u);  // A1
  // Resolving A1 exposes B1 and C1 (template order).
  s.AddBatch({Ref(1, /*B1*/ 102, 0), Ref(1, /*C1*/ 103, 0)}, false);
  EXPECT_EQ(s.Pop(0).oid, 102u);  // B1
  s.AddBatch({Ref(1, /*D1*/ 104, 0)}, false);
  EXPECT_EQ(s.Pop(0).oid, 104u);  // D1
  EXPECT_EQ(s.Pop(0).oid, 103u);  // C1 — complex 1 done
  EXPECT_EQ(s.Pop(0).oid, 201u);  // A2 — only now the next object
}

TEST(DepthFirstSchedulerTest, NewRootsQueueBehindWork) {
  DepthFirstScheduler s;
  s.AddBatch({Ref(1, 1, 0)}, true);
  EXPECT_EQ(s.Pop(0).oid, 1u);
  s.AddBatch({Ref(1, 2, 0)}, false);
  s.AddBatch({Ref(2, 9, 0)}, true);  // replacement admission
  EXPECT_EQ(s.Pop(0).oid, 2u);       // finish complex 1 first
  EXPECT_EQ(s.Pop(0).oid, 9u);
}

TEST(DepthFirstSchedulerTest, RemoveComplexDropsOnlyItsRefs) {
  DepthFirstScheduler s;
  s.AddBatch({Ref(1, 1, 0), Ref(2, 2, 0), Ref(1, 3, 0)}, false);
  s.RemoveComplex(1);
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_EQ(s.Pop(0).oid, 2u);
}

TEST(DepthFirstSchedulerTest, RemoveComplexKeepsSharedOwnedRefs) {
  DepthFirstScheduler s;
  s.AddBatch({Ref(1, 1, 0), Ref(1, 2, 0, /*shared_owned=*/true)}, false);
  s.RemoveComplex(1);
  ASSERT_EQ(s.Size(), 1u);
  EXPECT_EQ(s.Pop(0).oid, 2u);
}

// ---------------------------------------------------------- breadth-first

TEST(BreadthFirstSchedulerTest, PaperFigure4Order) {
  // Paper: "Al, A2, B1, C1, B2, C2, D1, D2, A3, ..." — breadth of the
  // window.
  BreadthFirstScheduler s;
  s.AddBatch({Ref(1, 101, 0)}, true);   // A1
  s.AddBatch({Ref(2, 201, 0)}, true);   // A2
  EXPECT_EQ(s.Pop(0).oid, 101u);        // A1
  s.AddBatch({Ref(1, 102, 0), Ref(1, 103, 0)}, false);  // B1 C1
  EXPECT_EQ(s.Pop(0).oid, 201u);        // A2
  s.AddBatch({Ref(2, 202, 0), Ref(2, 203, 0)}, false);  // B2 C2
  EXPECT_EQ(s.Pop(0).oid, 102u);        // B1
  s.AddBatch({Ref(1, 104, 0)}, false);  // D1
  EXPECT_EQ(s.Pop(0).oid, 103u);        // C1
  EXPECT_EQ(s.Pop(0).oid, 202u);        // B2
  s.AddBatch({Ref(2, 204, 0)}, false);  // D2
  EXPECT_EQ(s.Pop(0).oid, 203u);        // C2
  EXPECT_EQ(s.Pop(0).oid, 104u);        // D1
  EXPECT_EQ(s.Pop(0).oid, 204u);        // D2
}

TEST(BreadthFirstSchedulerTest, RemoveComplex) {
  BreadthFirstScheduler s;
  s.AddBatch({Ref(1, 1, 0), Ref(2, 2, 0)}, false);
  s.RemoveComplex(2);
  EXPECT_EQ(DrainOids(&s), std::vector<Oid>{1});
}

// --------------------------------------------------------------- elevator

TEST(ElevatorSchedulerTest, SweepsUpwardFromHead) {
  ElevatorScheduler s;
  s.AddBatch({Ref(1, 1, 50), Ref(1, 2, 10), Ref(1, 3, 30)}, false);
  EXPECT_EQ(s.Pop(20).oid, 3u);  // page 30 is the nearest >= 20
  EXPECT_EQ(s.Pop(30).oid, 1u);  // continue upward to 50
  EXPECT_EQ(s.Pop(50).oid, 2u);  // exhausted above: reverse to 10
}

TEST(ElevatorSchedulerTest, ReversesAtTop) {
  ElevatorScheduler s;
  s.AddBatch({Ref(1, 1, 5), Ref(1, 2, 15)}, false);
  EXPECT_EQ(s.Pop(10).oid, 2u);   // up to 15
  s.AddBatch({Ref(1, 3, 12)}, false);
  EXPECT_EQ(s.Pop(15).oid, 3u);   // nothing above 15: sweep down to 12
  EXPECT_EQ(s.Pop(12).oid, 1u);   // continue down to 5
}

TEST(ElevatorSchedulerTest, SamePageDrainsTogether) {
  ElevatorScheduler s;
  s.AddBatch({Ref(1, 1, 7), Ref(2, 2, 7), Ref(3, 3, 7)}, false);
  // All on page 7: insertion order preserved (priority order of the batch).
  EXPECT_EQ(s.Pop(0).oid, 1u);
  EXPECT_EQ(s.Pop(7).oid, 2u);
  EXPECT_EQ(s.Pop(7).oid, 3u);
}

TEST(ElevatorSchedulerTest, ExactHeadPositionIncluded) {
  ElevatorScheduler s;
  s.AddBatch({Ref(1, 1, 10)}, false);
  EXPECT_EQ(s.Pop(10).oid, 1u);  // zero-distance request served first
}

TEST(ElevatorSchedulerTest, MinimizesTotalSeekVersusFifo) {
  // A scattered request pool: SCAN's total seek must beat FIFO order.
  std::vector<PageId> pages = {90, 10, 80, 20, 70, 30, 60, 40, 50};
  ElevatorScheduler elevator;
  BreadthFirstScheduler fifo;
  std::vector<PendingRef> batch;
  for (size_t i = 0; i < pages.size(); ++i) {
    batch.push_back(Ref(1, i + 1, pages[i]));
  }
  elevator.AddBatch(batch, false);
  fifo.AddBatch(batch, false);
  auto total_seek = [](Scheduler* s) {
    PageId head = 0;
    uint64_t total = 0;
    while (!s->Empty()) {
      PendingRef ref = s->Pop(head);
      total += ref.page > head ? ref.page - head : head - ref.page;
      head = ref.page;
    }
    return total;
  };
  uint64_t elevator_seek = total_seek(&elevator);
  uint64_t fifo_seek = total_seek(&fifo);
  EXPECT_EQ(elevator_seek, 90u);  // one clean sweep 0 -> 90
  EXPECT_GT(fifo_seek, elevator_seek);
}

TEST(ElevatorSchedulerTest, RemoveComplexKeepsSharedOwned) {
  ElevatorScheduler s;
  s.AddBatch({Ref(1, 1, 10), Ref(1, 2, 20, /*shared_owned=*/true),
              Ref(2, 3, 30)},
             false);
  s.RemoveComplex(1);
  EXPECT_EQ(s.Size(), 2u);
  auto oids = DrainOids(&s);
  EXPECT_EQ(oids, (std::vector<Oid>{2, 3}));
}

TEST(SchedulerFactoryTest, MakesAllKinds) {
  for (auto kind : {SchedulerKind::kDepthFirst, SchedulerKind::kBreadthFirst,
                    SchedulerKind::kElevator}) {
    auto s = MakeScheduler(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->Empty());
    s->AddBatch({Ref(1, 1, 0)}, true);
    EXPECT_EQ(s->Size(), 1u);
    EXPECT_EQ(s->Pop(0).oid, 1u);
  }
}

TEST(SchedulerFactoryTest, KindNames) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kDepthFirst), "depth-first");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kBreadthFirst),
               "breadth-first");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kElevator), "elevator");
}

}  // namespace
}  // namespace cobra
