#include <gtest/gtest.h>

#include "object/schema.h"

namespace cobra {
namespace {

TypeCatalog MakeGenealogyCatalog() {
  TypeCatalog catalog;
  EXPECT_TRUE(catalog.DefineType("Residence", {"city", "zip"}, {}).ok());
  EXPECT_TRUE(catalog
                  .DefineType("Person", {"id", "birth_year"},
                              {{"father", "Person", false},
                               {"residence", "Residence", true}})
                  .ok());
  return catalog;
}

TEST(TypeCatalogTest, DefineAndFind) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  auto residence = catalog.Find("Residence");
  ASSERT_TRUE(residence.ok());
  EXPECT_EQ((*residence)->id, 1u);
  auto person = catalog.Find("Person");
  ASSERT_TRUE(person.ok());
  EXPECT_EQ((*person)->id, 2u);
  EXPECT_EQ(catalog.Find(2u).value()->name, "Person");
  EXPECT_TRUE(catalog.Find("Nope").status().IsNotFound());
  EXPECT_TRUE(catalog.Find(TypeId{99}).status().IsNotFound());
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(TypeCatalogTest, MemberIndexLookups) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  const auto* person = catalog.Find("Person").value();
  EXPECT_EQ(person->FieldIndex("id"), 0);
  EXPECT_EQ(person->FieldIndex("birth_year"), 1);
  EXPECT_EQ(person->FieldIndex("nope"), -1);
  EXPECT_EQ(person->RefIndex("father"), 0);
  EXPECT_EQ(person->RefIndex("residence"), 1);
  EXPECT_EQ(person->RefIndex("nope"), -1);
}

TEST(TypeCatalogTest, DuplicateTypeRejected) {
  TypeCatalog catalog;
  ASSERT_TRUE(catalog.DefineType("T", {}, {}).ok());
  EXPECT_TRUE(catalog.DefineType("T", {}, {}).status().IsAlreadyExists());
}

TEST(TypeCatalogTest, DuplicateMembersRejected) {
  TypeCatalog catalog;
  EXPECT_TRUE(catalog.DefineType("A", {"x", "x"}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog
                  .DefineType("B", {},
                              {{"r", "B", false}, {"r", "B", false}})
                  .status()
                  .IsInvalidArgument());
}

TEST(TypeCatalogTest, ValidateCatchesDanglingTargets) {
  TypeCatalog catalog;
  ASSERT_TRUE(
      catalog.DefineType("A", {}, {{"to_b", "B", false}}).ok());
  EXPECT_TRUE(catalog.Validate().IsInvalidArgument());
  ASSERT_TRUE(catalog.DefineType("B", {}, {}).ok());
  EXPECT_TRUE(catalog.Validate().ok());
}

TEST(TypeCatalogTest, MutualRecursionAllowed) {
  TypeCatalog catalog;
  ASSERT_TRUE(catalog.DefineType("Part", {"cost"},
                                 {{"sub", "Part", false}})
                  .ok());
  EXPECT_TRUE(catalog.Validate().ok());
}

TEST(BuildTemplateTest, Figure2Shape) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  auto tmpl = catalog.BuildTemplate("Person",
                                    {"father.residence", "residence"});
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  EXPECT_TRUE(tmpl->Validate().ok());
  // Person + father + father.residence + residence = 4 nodes (Fig. 2).
  EXPECT_EQ(tmpl->ReachableNodeCount(), 4u);
  const TemplateNode* root = tmpl->root();
  EXPECT_EQ(root->expected_type, 2u);  // Person
  ASSERT_EQ(root->children.size(), 2u);
  // "father.residence" came first: child 0 is the father edge (slot 0).
  EXPECT_EQ(root->children[0].ref_slot, 0);
  EXPECT_EQ(root->children[0].child->expected_type, 2u);  // Person
  EXPECT_FALSE(root->children[0].child->shared);
  ASSERT_EQ(root->children[0].child->children.size(), 1u);
  EXPECT_EQ(root->children[0].child->children[0].child->expected_type, 1u);
  EXPECT_TRUE(root->children[0].child->children[0].child->shared);
  EXPECT_EQ(root->children[1].ref_slot, 1);
  EXPECT_TRUE(root->children[1].child->shared);  // schema sharing flag
}

TEST(BuildTemplateTest, SharedPrefixesMerge) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  auto tmpl = catalog.BuildTemplate(
      "Person", {"father", "father.residence", "father.father"});
  ASSERT_TRUE(tmpl.ok());
  const TemplateNode* root = tmpl->root();
  // One father edge, with two children below it.
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0].child->children.size(), 2u);
  EXPECT_EQ(tmpl->ReachableNodeCount(), 4u);
}

TEST(BuildTemplateTest, RootOnly) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  auto tmpl = catalog.BuildTemplate("Person", {});
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->ReachableNodeCount(), 1u);
  EXPECT_TRUE(tmpl->root()->children.empty());
}

TEST(BuildTemplateTest, BadPathsRejected) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  EXPECT_TRUE(catalog.BuildTemplate("Person", {"spouse"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.BuildTemplate("Person", {"father..residence"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.BuildTemplate("Person", {""})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      catalog.BuildTemplate("Nope", {"father"}).status().IsNotFound());
  // Scalars are not references.
  EXPECT_TRUE(catalog.BuildTemplate("Person", {"id"})
                  .status()
                  .IsInvalidArgument());
}

TEST(BuildTemplateTest, RecursivePathsUnrollPerSegment) {
  TypeCatalog catalog;
  ASSERT_TRUE(catalog.DefineType("Part", {"cost"},
                                 {{"sub", "Part", false}})
                  .ok());
  auto tmpl = catalog.BuildTemplate("Part", {"sub.sub.sub"});
  ASSERT_TRUE(tmpl.ok());
  // Paths build distinct nodes per segment: no template cycle.
  EXPECT_FALSE(tmpl->IsRecursive());
  EXPECT_EQ(tmpl->ReachableNodeCount(), 4u);
}

TEST(ObjectBuilderTest, BuildsByName) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  auto obj = ObjectBuilder(&catalog, "Person")
                 .Oid(77)
                 .Set("id", 1)
                 .Set("birth_year", 1970)
                 .SetRef("residence", 55)
                 .Build();
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->oid, 77u);
  EXPECT_EQ(obj->type_id, 2u);
  EXPECT_EQ(obj->fields[0], 1);
  EXPECT_EQ(obj->fields[1], 1970);
  EXPECT_EQ(obj->refs[0], kInvalidOid);  // father unset
  EXPECT_EQ(obj->refs[1], 55u);
  EXPECT_EQ(obj->refs.size(), 8u);  // padded to the storage layout
}

TEST(ObjectBuilderTest, UnknownMembersReported) {
  TypeCatalog catalog = MakeGenealogyCatalog();
  EXPECT_TRUE(ObjectBuilder(&catalog, "Person")
                  .Set("nope", 1)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ObjectBuilder(&catalog, "Person")
                  .SetRef("nope", 1)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ObjectBuilder(&catalog, "Ghost").Build().status().IsNotFound());
}

}  // namespace
}  // namespace cobra
