#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/slotted_page.h"

namespace cobra {
namespace {

constexpr size_t kPageSize = 1024;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : buffer_(kPageSize), page_(buffer_.data(), kPageSize) {
    SlottedPage::Init(buffer_.data(), kPageSize);
  }
  std::vector<std::byte> buffer_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, EmptyAfterInit) {
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.live_count(), 0);
  EXPECT_GT(page_.FreeSpace(), kPageSize - 24);
  EXPECT_EQ(page_.lsn(), 0u);
}

TEST_F(SlottedPageTest, InsertAndGetRoundTrip) {
  auto rec = Bytes("hello world");
  auto slot = page_.Insert(rec);
  ASSERT_TRUE(slot.ok());
  auto got = page_.Get(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "hello world");
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctSlots) {
  auto s1 = page_.Insert(Bytes("alpha"));
  auto s2 = page_.Insert(Bytes("beta"));
  auto s3 = page_.Insert(Bytes("gamma"));
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(ToString(*page_.Get(*s1)), "alpha");
  EXPECT_EQ(ToString(*page_.Get(*s2)), "beta");
  EXPECT_EQ(ToString(*page_.Get(*s3)), "gamma");
  EXPECT_EQ(page_.live_count(), 3);
}

TEST_F(SlottedPageTest, EmptyRecordRejected) {
  EXPECT_TRUE(page_.Insert({}).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, DeleteFreesSlotForReuse) {
  auto s1 = page_.Insert(Bytes("first"));
  auto s2 = page_.Insert(Bytes("second"));
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(page_.Delete(*s1).ok());
  EXPECT_FALSE(page_.IsLive(*s1));
  EXPECT_TRUE(page_.Get(*s1).status().IsNotFound());
  // The next insert reuses the dead slot.
  auto s3 = page_.Insert(Bytes("third"));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, *s1);
  EXPECT_EQ(ToString(*page_.Get(*s3)), "third");
}

TEST_F(SlottedPageTest, DoubleDeleteIsNotFound) {
  auto s = page_.Insert(Bytes("x"));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(page_.Delete(*s).ok());
  EXPECT_TRUE(page_.Delete(*s).IsNotFound());
}

TEST_F(SlottedPageTest, DeleteOutOfRangeSlot) {
  EXPECT_TRUE(page_.Delete(42).IsOutOfRange());
}

TEST_F(SlottedPageTest, GetOutOfRangeSlot) {
  EXPECT_TRUE(page_.Get(9).status().IsOutOfRange());
}

TEST_F(SlottedPageTest, UpdateInPlace) {
  auto s = page_.Insert(Bytes("abcdef"));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(page_.Update(*s, Bytes("ABCDEF")).ok());
  EXPECT_EQ(ToString(*page_.Get(*s)), "ABCDEF");
}

TEST_F(SlottedPageTest, UpdateLengthMismatchRejected) {
  auto s = page_.Insert(Bytes("abc"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(page_.Update(*s, Bytes("abcd")).IsInvalidArgument());
}

TEST_F(SlottedPageTest, FillsToCapacityThenRejects) {
  // 96-byte records (the paper's object size): 16-byte header + 100 bytes
  // per record (slot + body) -> 10 records per 1 KB page.
  std::vector<std::byte> rec(96, std::byte{0x5A});
  int inserted = 0;
  for (;;) {
    auto slot = rec.empty() ? Result<uint16_t>(Status::Internal(""))
                            : page_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsResourceExhausted());
      break;
    }
    ++inserted;
    ASSERT_LT(inserted, 50) << "page never filled";
  }
  EXPECT_EQ(inserted, 10);
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  // Fill the page, delete every other record, and verify that new inserts
  // succeed again via compaction.
  std::vector<uint16_t> slots;
  std::vector<std::byte> rec(96, std::byte{0x11});
  for (;;) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  ASSERT_GE(slots.size(), 4u);
  size_t deleted = 0;
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
    ++deleted;
  }
  // Survivors must be readable after compaction-triggering inserts.
  for (size_t i = 0; i < deleted; ++i) {
    std::vector<std::byte> marked(96, std::byte{static_cast<uint8_t>(i)});
    auto slot = page_.Insert(marked);
    ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  }
  for (size_t i = 1; i < slots.size(); i += 2) {
    auto got = page_.Get(slots[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0], std::byte{0x11});
  }
}

TEST_F(SlottedPageTest, VariableSizeRecordsCoexist) {
  auto s1 = page_.Insert(Bytes(std::string(200, 'a')));
  auto s2 = page_.Insert(Bytes("tiny"));
  auto s3 = page_.Insert(Bytes(std::string(500, 'b')));
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(page_.Get(*s1)->size(), 200u);
  EXPECT_EQ(page_.Get(*s2)->size(), 4u);
  EXPECT_EQ(page_.Get(*s3)->size(), 500u);
}

TEST_F(SlottedPageTest, CanFitAccountsForDirectoryGrowth) {
  EXPECT_TRUE(page_.CanFit(1004));   // 16 header + 4 slot + 1004 == 1024
  EXPECT_FALSE(page_.CanFit(1005));  // 16 header + 4 slot + 1005 > 1024
}

TEST_F(SlottedPageTest, PageLsnRoundTripsAndSurvivesMutation) {
  EXPECT_EQ(page_.lsn(), 0u);
  page_.set_lsn(0x0123456789ABCDEFULL);
  EXPECT_EQ(page_.lsn(), 0x0123456789ABCDEFULL);
  auto s = page_.Insert(Bytes("record"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(page_.lsn(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(ToString(*page_.Get(*s)), "record");
}

TEST_F(SlottedPageTest, TooLargeRecordRejectedNotCorrupted) {
  std::vector<std::byte> rec(2000, std::byte{1});
  EXPECT_TRUE(page_.Insert(rec).status().IsResourceExhausted());
  EXPECT_EQ(page_.slot_count(), 0);
}

TEST_F(SlottedPageTest, StressRandomInsertDelete) {
  // Pseudo-random mixed workload; validates live bookkeeping end to end.
  std::vector<std::pair<uint16_t, uint8_t>> live;
  uint32_t state = 12345;
  auto next = [&state]() {
    state = state * 1664525 + 1013904223;
    return state >> 16;
  };
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || next() % 3 != 0) {
      uint8_t tag = static_cast<uint8_t>(next() % 251);
      std::vector<std::byte> rec(1 + next() % 60, std::byte{tag});
      auto slot = page_.Insert(rec);
      if (slot.ok()) {
        live.push_back({*slot, tag});
      }
    } else {
      size_t pick = next() % live.size();
      ASSERT_TRUE(page_.Delete(live[pick].first).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_EQ(page_.live_count(), live.size());
  for (const auto& [slot, tag] : live) {
    auto got = page_.Get(slot);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0], std::byte{tag});
  }
}

}  // namespace
}  // namespace cobra
