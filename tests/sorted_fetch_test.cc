// The §2 sorted-pointer baseline: correctness against naive assembly and
// the expected space/seek trade against the window operator.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "assembly/naive.h"
#include "assembly/sorted_fetch.h"
#include "workload/acob.h"
#include "workload/hypermodel.h"

namespace cobra {
namespace {

TEST(SortedFetchTest, MatchesNaiveOnAcob) {
  AcobOptions options;
  options.num_complex_objects = 50;
  options.clustering = Clustering::kUnclustered;
  options.seed = 6;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  std::map<Oid, std::set<Oid>> expected;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    auto oids = CollectOids(*obj);
    expected[root] = std::set<Oid>(oids.begin(), oids.end());
  }

  ASSERT_TRUE((*db)->ColdRestart().ok());
  auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                      (*db)->roots);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->assembled.size(), 50u);
  for (AssembledObject* obj : result->assembled) {
    auto oids = CollectOids(obj);
    EXPECT_EQ((std::set<Oid>(oids.begin(), oids.end())), expected[obj->oid]);
  }
  // Binary tree of 3 levels => 3 fetch waves.
  EXPECT_EQ(result->stats.levels, 3u);
  EXPECT_EQ(result->stats.objects_fetched, 350u);
  // The middle level materializes 2 refs per complex, the last 4.
  EXPECT_EQ(result->stats.max_sorted_refs, 200u);
}

TEST(SortedFetchTest, PreservesInputOrder) {
  AcobOptions options;
  options.num_complex_objects = 10;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                      (*db)->roots);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assembled.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result->assembled[i]->oid, (*db)->roots[i]);
  }
}

TEST(SortedFetchTest, FetchesInPhysicalOrderWithinLevel) {
  AcobOptions options;
  options.num_complex_objects = 200;
  options.clustering = Clustering::kUnclustered;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  (*db)->disk->EnableReadTrace(true);
  auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                      (*db)->roots);
  ASSERT_TRUE(result.ok());
  // Within the trace, page numbers form at most `levels` ascending runs.
  const auto& trace = (*db)->disk->read_trace();
  ASSERT_FALSE(trace.empty());
  size_t descents = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] < trace[i - 1]) ++descents;
  }
  EXPECT_LE(descents, result->stats.levels - 1);
}

TEST(SortedFetchTest, PredicatesAbort) {
  AcobOptions options;
  options.num_complex_objects = 100;
  options.seed = 11;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  TemplateNode* b = (*db)->nodes[1];
  b->predicate = [](const ObjectData& obj) { return obj.fields[0] < 5000; };
  b->selectivity = 0.5;

  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  auto expected = naive.AssembleAll((*db)->roots, &arena);
  ASSERT_TRUE(expected.ok());

  auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                      (*db)->roots);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assembled.size(), expected->size());
  EXPECT_EQ(result->stats.complex_aborted, 100u - expected->size());
  b->predicate = nullptr;
  b->selectivity = 1.0;
}

TEST(SortedFetchTest, SharedComponentsDeduped) {
  AcobOptions options;
  options.num_complex_objects = 100;
  options.sharing = 0.1;
  options.seed = 2;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                      (*db)->roots);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assembled.size(), 100u);
  // 100 complex objects x 6 private + 10 pool objects.
  EXPECT_EQ(result->stats.objects_fetched, 610u);
  EXPECT_EQ(result->stats.shared_hits, 90u);
}

TEST(SortedFetchTest, HandlesRecursiveTemplates) {
  HyperModelOptions options;
  options.levels = 4;
  options.refers_to_fraction = 0.5;
  auto db = BuildHyperModelDatabase(options);
  ASSERT_TRUE(db.ok());
  auto result = AssembleBySortedFetch(
      (*db)->store.get(), &(*db)->closure_tmpl, {(*db)->root});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->assembled.size(), 1u);
  EXPECT_EQ(CountAssembled(result->assembled[0]), (*db)->total_nodes);
}

TEST(SortedFetchTest, PoolScalesWithSetSizeUnlikeWindow) {
  // The paper's §2 point: the sorted approach needs space proportional to
  // the whole set.
  for (size_t n : {size_t{50}, size_t{200}}) {
    AcobOptions options;
    options.num_complex_objects = n;
    auto db = BuildAcobDatabase(options);
    ASSERT_TRUE(db.ok());
    auto result = AssembleBySortedFetch((*db)->store.get(), &(*db)->tmpl,
                                        (*db)->roots);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.max_sorted_refs, 4 * n);  // the leaf level
  }
}

}  // namespace
}  // namespace cobra
