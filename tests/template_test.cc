#include <gtest/gtest.h>

#include "assembly/component_iterator.h"
#include "assembly/template.h"

namespace cobra {
namespace {

TEST(TemplateTest, ValidateRequiresRoot) {
  AssemblyTemplate tmpl;
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
}

TEST(TemplateTest, SimpleTreeValidates) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* child = tmpl.AddNode("child");
  root->children.push_back({0, child});
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().ok());
  EXPECT_FALSE(tmpl.IsRecursive());
  EXPECT_EQ(tmpl.ReachableNodeCount(), 2u);
  EXPECT_EQ(*tmpl.ComponentsPerComplexObject(), 2u);
}

TEST(TemplateTest, NullChildRejected) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  root->children.push_back({0, nullptr});
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
}

TEST(TemplateTest, NegativeSlotRejected) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* child = tmpl.AddNode("child");
  root->children.push_back({-1, child});
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
}

TEST(TemplateTest, BadSelectivityRejected) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  root->selectivity = 1.5;
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
}

TEST(TemplateTest, ForeignNodeRejected) {
  AssemblyTemplate other;
  TemplateNode* foreign = other.AddNode("foreign");
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  root->children.push_back({0, foreign});
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
}

TEST(TemplateTest, RecursiveTemplateDetected) {
  AssemblyTemplate tmpl;
  TemplateNode* part = tmpl.AddNode("part");
  part->children.push_back({0, part});
  tmpl.SetRoot(part);
  EXPECT_TRUE(tmpl.Validate().ok());
  EXPECT_TRUE(tmpl.IsRecursive());
  EXPECT_TRUE(
      tmpl.ComponentsPerComplexObject().status().IsInvalidArgument());
}

TEST(TemplateTest, DagIsNotRecursive) {
  // Diamond: root -> {a, b} -> shared leaf.  A DAG has no cycle.
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  TemplateNode* a = tmpl.AddNode("a");
  TemplateNode* b = tmpl.AddNode("b");
  TemplateNode* leaf = tmpl.AddNode("leaf");
  root->children.push_back({0, a});
  root->children.push_back({1, b});
  a->children.push_back({0, leaf});
  b->children.push_back({0, leaf});
  tmpl.SetRoot(root);
  EXPECT_TRUE(tmpl.Validate().ok());
  EXPECT_FALSE(tmpl.IsRecursive());
  EXPECT_EQ(tmpl.ReachableNodeCount(), 4u);
  // Components count paths: leaf reached twice.
  EXPECT_EQ(*tmpl.ComponentsPerComplexObject(), 5u);
}

TEST(TemplateTest, BinaryTreeFactory) {
  std::vector<TemplateNode*> nodes;
  AssemblyTemplate tmpl = MakeBinaryTreeTemplate(3, &nodes);
  EXPECT_TRUE(tmpl.Validate().ok());
  EXPECT_EQ(tmpl.ReachableNodeCount(), 7u);
  EXPECT_EQ(*tmpl.ComponentsPerComplexObject(), 7u);
  ASSERT_EQ(nodes.size(), 7u);
  EXPECT_EQ(nodes[0], tmpl.root());
  EXPECT_EQ(nodes[0]->expected_type, 1u);
  EXPECT_EQ(nodes[6]->expected_type, 7u);
  // Root's children on reference slots 0 and 1.
  ASSERT_EQ(nodes[0]->children.size(), 2u);
  EXPECT_EQ(nodes[0]->children[0].ref_slot, 0);
  EXPECT_EQ(nodes[0]->children[0].child, nodes[1]);
  EXPECT_EQ(nodes[0]->children[1].child, nodes[2]);
  // Leaves have no children.
  EXPECT_TRUE(nodes[3]->children.empty());
}

TEST(TemplateTest, RejectionProbability) {
  TemplateNode node;
  node.selectivity = 0.25;
  EXPECT_DOUBLE_EQ(node.rejection_probability(), 0.75);
}

TEST(TemplateTest, MaxDepthValidated) {
  AssemblyTemplate tmpl;
  TemplateNode* root = tmpl.AddNode("root");
  tmpl.SetRoot(root);
  tmpl.set_max_depth(0);
  EXPECT_TRUE(tmpl.Validate().IsInvalidArgument());
  tmpl.set_max_depth(5);
  EXPECT_TRUE(tmpl.Validate().ok());
}

// ------------------------------------------------------ ComponentIterator

class ComponentIteratorTest : public ::testing::Test {
 protected:
  ComponentIteratorTest() {
    root_ = tmpl_.AddNode("root");
    fast_reject_ = tmpl_.AddNode("fast_reject");
    slow_reject_ = tmpl_.AddNode("slow_reject");
    no_pred_ = tmpl_.AddNode("no_pred");
    root_->expected_type = 1;
    fast_reject_->selectivity = 0.1;   // rejection 0.9
    slow_reject_->selectivity = 0.8;   // rejection 0.2
    no_pred_->selectivity = 1.0;       // rejection 0
    root_->children.push_back({0, no_pred_});
    root_->children.push_back({1, slow_reject_});
    root_->children.push_back({2, fast_reject_});
    tmpl_.SetRoot(root_);
  }

  ObjectData Obj() {
    ObjectData obj;
    obj.oid = 1;
    obj.type_id = 1;
    obj.refs = {11, 12, 13, kInvalidOid};
    return obj;
  }

  AssemblyTemplate tmpl_;
  TemplateNode* root_;
  TemplateNode* fast_reject_;
  TemplateNode* slow_reject_;
  TemplateNode* no_pred_;
};

TEST_F(ComponentIteratorTest, TypeCheckPasses) {
  ComponentIterator it(&tmpl_);
  EXPECT_TRUE(it.CheckObject(Obj(), root_).ok());
}

TEST_F(ComponentIteratorTest, TypeMismatchIsCorruption) {
  ComponentIterator it(&tmpl_);
  ObjectData obj = Obj();
  obj.type_id = 99;
  EXPECT_TRUE(it.CheckObject(obj, root_).IsCorruption());
}

TEST_F(ComponentIteratorTest, AnyTypeSkipsCheck) {
  ComponentIterator it(&tmpl_);
  ObjectData obj = Obj();
  obj.type_id = 99;
  EXPECT_TRUE(it.CheckObject(obj, no_pred_).ok());
}

TEST_F(ComponentIteratorTest, MissingRefSlotIsCorruption) {
  ComponentIterator it(&tmpl_);
  ObjectData obj = Obj();
  obj.refs.resize(1);  // root template needs slots 0..2
  EXPECT_TRUE(it.CheckObject(obj, root_).IsCorruption());
}

TEST_F(ComponentIteratorTest, ExpandTemplateOrder) {
  ComponentIterator it(&tmpl_);
  auto refs = it.Expand(Obj(), root_, /*prioritize_predicates=*/false);
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 3u);
  EXPECT_EQ((*refs)[0].node, no_pred_);
  EXPECT_EQ((*refs)[0].oid, 11u);
  EXPECT_EQ((*refs)[0].child_index, 0);
  EXPECT_EQ((*refs)[2].node, fast_reject_);
}

TEST_F(ComponentIteratorTest, ExpandPrioritizesRejection) {
  // §5: "the component with the higher rejection probability should be
  // retrieved first".
  ComponentIterator it(&tmpl_);
  auto refs = it.Expand(Obj(), root_, /*prioritize_predicates=*/true);
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 3u);
  EXPECT_EQ((*refs)[0].node, fast_reject_);
  EXPECT_EQ((*refs)[1].node, slow_reject_);
  EXPECT_EQ((*refs)[2].node, no_pred_);
  // child_index still refers to template positions.
  EXPECT_EQ((*refs)[0].child_index, 2);
}

TEST_F(ComponentIteratorTest, InvalidOidSkipped) {
  ComponentIterator it(&tmpl_);
  ObjectData obj = Obj();
  obj.refs[1] = kInvalidOid;  // drop slow_reject child
  auto refs = it.Expand(obj, root_, false);
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(refs->size(), 2u);
}

}  // namespace
}  // namespace cobra
