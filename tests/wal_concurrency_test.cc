// Write transactions racing assembly queries (ctest label `concurrency`;
// CI also runs this binary under -fsanitize=thread).
//
// A preloaded ACOB database serves concurrent assembly queries through the
// QueryService while writer threads push ExecuteWrite transactions —
// inserts, same-size updates, removes, and explicit aborts — through the
// same buffer pool, WAL write gate, and shared directory.  Readers hold the
// service's store lock shared, writers exclusive; commit durability waits
// happen outside the lock so committers share group-commit flushes.  The
// WAL flush telemetry flows through LockedTelemetry into a registry off the
// group-commit daemon thread, which is exactly the cross-thread path TSan
// needs to see.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "object/object.h"
#include "object/object_store.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "service/query_service.h"
#include "storage/disk.h"
#include "wal/wal.h"
#include "workload/acob.h"

namespace cobra {
namespace {

constexpr size_t kWriters = 4;
constexpr size_t kJobsPerWriter = 24;

ObjectData MakeObject(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 99;  // outside the workload's template types
  obj.fields = {tag, tag + 1, tag + 2, tag + 3};
  obj.refs = {};
  return obj;
}

TEST(WalConcurrency, WritersRaceQueriesUnderOneServiceStack) {
  AcobOptions options;
  options.num_complex_objects = 120;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  auto built = BuildAcobDatabase(options);
  ASSERT_TRUE(built.ok());
  auto db = std::move(*built);
  ASSERT_TRUE(db->ColdRestart().ok());

  // Extents past everything the workload wrote.
  const PageId base = db->disk->page_span();
  const PageId write_first = base + 8;
  const size_t write_pages = 64;
  wal::WalOptions wal_options;
  wal_options.log_first_page = base + 128;
  wal_options.log_max_pages = 4096;

  // Writer-thread bookkeeping for the post-drain verification.
  struct WriterModel {
    std::map<Oid, ObjectData> expected;
    uint64_t committed = 0;
    uint64_t aborted = 0;
  };
  std::vector<WriterModel> models(kWriters);
  std::atomic<uint64_t> write_failures{0};

  obs::Registry registry;
  obs::RegistryPublisher publisher(&registry);
  // The wal daemon publishes flushes concurrently with everything else:
  // serialize it onto the registry through the service's locked fan-in.
  service::LockedTelemetry telemetry(nullptr, nullptr, &publisher);

  {
    wal::WalManager wal(db->disk.get(), wal_options);
    wal.set_listener(&telemetry);
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager pool(db->disk.get(),
                       BufferOptions{.num_frames = 4096, .num_shards = 8});
    pool.set_write_gate(&wal);
    HeapFile write_file(&pool, write_first, write_pages);
    write_file.set_wal(&wal);

    service::ServiceOptions service_options;
    service_options.num_workers = 4;
    service_options.wal = &wal;
    service_options.write_file = &write_file;
    service_options.next_oid = db->store->next_oid() + 1'000'000;
    service::QueryService service(&pool, db->directory.get(),
                                  service_options);

    // Queries: the whole root population, split across jobs.
    std::vector<std::future<service::QueryResult>> queries;
    const size_t jobs = 8;
    const size_t per_job = db->roots.size() / jobs;
    for (size_t j = 0; j < jobs; ++j) {
      service::QueryJob job;
      job.client = "reader" + std::to_string(j);
      job.tmpl = &db->tmpl;
      job.roots.assign(db->roots.begin() + j * per_job,
                       j + 1 == jobs ? db->roots.end()
                                     : db->roots.begin() + (j + 1) * per_job);
      job.assembly.window_size = 25;
      job.assembly.scheduler = SchedulerKind::kElevator;
      queries.push_back(service.Submit(std::move(job)));
    }

    // Writers: each thread owns a disjoint OID range, so its model of the
    // final state is exact regardless of interleaving.
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        WriterModel& model = models[w];
        const Oid first_oid =
            db->store->next_oid() + static_cast<Oid>(w) * 10'000;
        Oid next = first_oid;
        for (size_t j = 0; j < kJobsPerWriter; ++j) {
          service::WriteJob job;
          job.client = "writer" + std::to_string(w);
          job.abort = j % 5 == 4;
          std::map<Oid, ObjectData> scratch = model.expected;
          // Two inserts.
          for (int i = 0; i < 2; ++i) {
            service::WriteOp op;
            op.kind = service::WriteOp::Kind::kInsert;
            op.obj = MakeObject(next++, static_cast<int32_t>(j * 10 + i));
            scratch[op.obj.oid] = op.obj;
            job.ops.push_back(op);
          }
          // Update the writer's oldest live object.
          if (!model.expected.empty()) {
            service::WriteOp op;
            op.kind = service::WriteOp::Kind::kUpdate;
            op.obj = MakeObject(model.expected.begin()->first,
                                static_cast<int32_t>(7000 + j));
            scratch[op.obj.oid] = op.obj;
            job.ops.push_back(op);
          }
          // Occasionally remove the newest live object.
          if (j % 3 == 2 && !model.expected.empty()) {
            service::WriteOp op;
            op.kind = service::WriteOp::Kind::kRemove;
            op.oid = model.expected.rbegin()->first;
            scratch.erase(op.oid);
            job.ops.push_back(op);
          }

          service::WriteResult result = service.ExecuteWrite(job);
          if (!result.status.ok()) {
            ++write_failures;
            continue;
          }
          if (job.abort) {
            EXPECT_TRUE(result.aborted);
            ++model.aborted;  // state unchanged
          } else {
            EXPECT_EQ(result.ops_applied, job.ops.size());
            ++model.committed;
            model.expected = std::move(scratch);
          }
        }
      });
    }
    for (auto& t : writers) t.join();
    service.Drain();

    // Every query completed over consistent data.
    uint64_t rows = 0;
    for (auto& f : queries) {
      service::QueryResult result = f.get();
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      rows += result.rows;
    }
    EXPECT_EQ(rows, db->roots.size());
    EXPECT_EQ(write_failures.load(), 0u);
    EXPECT_EQ(pool.pinned_frames(), 0u);
    EXPECT_EQ(wal.active_txns(), 0u);

    // Committed writes are visible (and aborted ones invisible) through a
    // fresh store view over the same pool and directory.
    uint64_t committed = 0;
    uint64_t aborted = 0;
    ObjectStore reader(&pool, db->directory.get());
    for (const WriterModel& model : models) {
      committed += model.committed;
      aborted += model.aborted;
      for (const auto& [oid, want] : model.expected) {
        auto got = reader.Get(oid);
        ASSERT_TRUE(got.ok()) << "oid " << oid << ": "
                              << got.status().ToString();
        EXPECT_EQ(*got, want);
      }
    }
    wal::WalStats stats = wal.stats();
    EXPECT_EQ(stats.commits, committed);
    EXPECT_EQ(stats.aborts, aborted);
    EXPECT_GT(stats.batches_flushed, 0u);

    // The daemon's flush events landed in the registry via the locked path.
    const obs::Counter* flushes = registry.FindCounter("wal.flushes");
    ASSERT_NE(flushes, nullptr);
    EXPECT_EQ(flushes->value(), stats.batches_flushed);

    // Quiesced, the log can be truncated and written through again.
    ASSERT_TRUE(wal.Checkpoint(&pool).ok());
    service::WriteJob after;
    service::WriteOp op;
    op.kind = service::WriteOp::Kind::kInsert;
    op.obj = MakeObject(db->store->next_oid() + 999'999, 1);
    after.ops.push_back(op);
    EXPECT_TRUE(service.ExecuteWrite(after).status.ok());
  }
}

}  // namespace
}  // namespace cobra
