// Recovery-idempotence stress (ctest label `stress`): a large seeded
// transaction mix — inserts, same-size updates, removes, explicit aborts,
// periodic flushes — is cut down by power cuts at several write boundaries,
// in both crash modes.  After each cut the log is replayed once, the data
// extent snapshotted, and replayed again from scratch: redo must be
// idempotent (bit-identical pages, second pass all-stale), the recovered
// store must be checksum-clean, and it must equal the object map after some
// acknowledged-or-later commit prefix.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "storage/checksum.h"
#include "storage/faulty_disk.h"
#include "wal/wal.h"

namespace cobra {
namespace {

constexpr PageId kDataFirst = 0;
constexpr size_t kDataPages = 32;
constexpr PageId kLogFirst = 256;
constexpr size_t kLogPages = 2048;
constexpr uint64_t kSeed = 20260807;
constexpr size_t kTxns = 60;

wal::WalOptions LogOptions() {
  wal::WalOptions options;
  options.log_first_page = kLogFirst;
  options.log_max_pages = kLogPages;
  return options;
}

ObjectData MakeObject(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 1;
  obj.fields = {tag, tag * 3 + 1, tag * 7 + 2, ~tag};
  obj.refs = {};
  return obj;
}

using ObjectMap = std::map<Oid, ObjectData>;

// The workload driver.  The op sequence is a pure function of kSeed, so
// every crash point replays the identical transaction mix.  `states`
// receives the expected object map after every commit *attempt* in order;
// `acked` receives the index into `states` of the last commit that returned
// OK (size_t(-1) when none did).
void RunWorkload(FaultInjectingDisk* disk, uint64_t crash_after,
                 CrashWriteMode mode, std::vector<ObjectMap>* states,
                 size_t* acked) {
  states->clear();
  *acked = static_cast<size_t>(-1);
  disk->ScheduleCrash(crash_after, mode);

  std::mt19937_64 rng(kSeed);
  wal::WalManager wal(disk, LogOptions());
  if (!wal.Recover().ok()) return;
  BufferManager buffer(disk, BufferOptions{.num_frames = 64});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);
  HashDirectory directory;
  ObjectStore store(&buffer, &directory);
  store.set_wal(&wal);

  ObjectMap model;  // committed state if every commit lands
  Oid next_oid = 1;
  int32_t next_tag = 1000;

  for (size_t i = 0; i < kTxns; ++i) {
    const bool abort = rng() % 7 == 0;
    const size_t num_ops = 1 + rng() % 4;
    ObjectMap scratch = model;

    auto txn = store.BeginTxn();
    if (!txn.ok()) break;  // log dead: the crash already hit
    bool ops_ok = true;
    for (size_t op = 0; op < num_ops && ops_ok; ++op) {
      const uint64_t dice = rng() % 10;
      std::vector<Oid> live(scratch.size());
      size_t k = 0;
      for (const auto& [oid, obj] : scratch) live[k++] = oid;
      if (dice < 5 || live.empty()) {
        ObjectData obj = MakeObject(next_oid++, next_tag++);
        ops_ok = store.InsertTxn(*txn, obj, &file).ok();
        if (ops_ok) scratch[obj.oid] = obj;
      } else if (dice < 8) {
        Oid target = live[rng() % live.size()];
        ObjectData obj = MakeObject(target, next_tag++);
        ops_ok = store.UpdateTxn(*txn, obj, &file).ok();
        if (ops_ok) scratch[target] = obj;
      } else {
        Oid target = live[rng() % live.size()];
        ops_ok = store.RemoveTxn(*txn, target, &file).ok();
        if (ops_ok) scratch.erase(target);
      }
    }

    if (abort || !ops_ok) {
      (void)store.AbortTxn(*txn);
      continue;  // model unchanged
    }
    // Commit attempt: whatever happens, `scratch` is a state recovery may
    // legitimately surface (the commit record may be durable even when the
    // acknowledgement never arrived).
    states->push_back(scratch);
    if (store.CommitTxn(*txn).ok()) {
      *acked = states->size() - 1;
    }
    model = std::move(scratch);

    if (i % 12 == 11) {
      (void)buffer.FlushAll();
    }
  }
  (void)buffer.FlushAll();
}

std::vector<std::vector<std::byte>> SnapshotExtent(FaultInjectingDisk* disk) {
  std::vector<std::vector<std::byte>> pages;
  std::vector<std::byte> raw(disk->page_size());
  for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
    if (disk->Exists(id)) {
      EXPECT_TRUE(disk->ReadPage(id, raw.data()).ok());
      pages.push_back(raw);
    } else {
      pages.emplace_back();
    }
  }
  return pages;
}

void VerifyCrashPoint(uint64_t crash_after, CrashWriteMode mode,
                      const std::string& label) {
  SCOPED_TRACE(label);
  FaultInjectingDisk disk(FaultProfile{});
  std::vector<ObjectMap> states;
  size_t acked = 0;
  RunWorkload(&disk, crash_after, mode, &states, &acked);
  disk.ClearCrash();

  // First replay.
  uint64_t repaired = 0;
  {
    wal::WalManager wal(&disk, LogOptions());
    Status recovered = wal.Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.ToString();
    repaired = wal.stats().pages_repaired;
  }
  auto first = SnapshotExtent(&disk);

  // Second replay from scratch: redo twice must be bit-identical.  (A
  // logical record that postdates its page's last logged image re-applies
  // on every pass — with identical bytes — so the invariant is the bytes,
  // not the counter.)
  {
    wal::WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
  }
  EXPECT_EQ(first, SnapshotExtent(&disk)) << "redo is not idempotent";

  // Checksum-clean store.
  std::vector<std::byte> raw(disk.page_size());
  for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
    if (!disk.Exists(id)) continue;
    ASSERT_TRUE(disk.ReadPage(id, raw.data()).ok());
    EXPECT_TRUE(VerifyPageChecksum(raw.data(), raw.size(), id).ok())
        << "page " << id;
  }

  // The recovered object map equals the model after some commit prefix at
  // or past the last acknowledged commit.
  ObjectMap actual;
  {
    wal::WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager buffer(&disk, BufferOptions{.num_frames = 64});
    buffer.set_write_gate(&wal);
    auto file = HeapFile::Open(&buffer, kDataFirst, kDataPages);
    ASSERT_TRUE(file.ok());
    auto cursor = file->Scan();
    RecordId rid;
    std::vector<std::byte> record;
    for (;;) {
      auto more = cursor.Next(&rid, &record);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      auto obj = ObjectData::Deserialize(record);
      ASSERT_TRUE(obj.ok());
      actual[obj->oid] = *obj;
    }
  }
  bool matched = actual.empty() && acked == static_cast<size_t>(-1);
  const size_t from = acked == static_cast<size_t>(-1) ? 0 : acked;
  for (size_t i = from; i < states.size() && !matched; ++i) {
    matched = actual == states[i];
  }
  EXPECT_TRUE(matched) << "recovered state (" << actual.size()
                       << " objects) matches no commit prefix >= "
                       << (acked == static_cast<size_t>(-1)
                               ? std::string("none")
                               : std::to_string(acked));
  (void)repaired;
}

class WalRecoveryStress
    : public ::testing::TestWithParam<CrashWriteMode> {};

TEST_P(WalRecoveryStress, RedoTwiceIsBitIdenticalAcrossCrashPoints) {
  // The whole op mix is a pure function of kSeed; log it so any failure
  // line carries everything needed to replay the identical schedule.
  SCOPED_TRACE("workload seed=" + std::to_string(kSeed));
  // Size the sweep from an uncrashed run.
  uint64_t total_writes = 0;
  {
    FaultInjectingDisk disk(FaultProfile{});
    std::vector<ObjectMap> states;
    size_t acked = 0;
    RunWorkload(&disk, ~uint64_t{0}, GetParam(), &states, &acked);
    ASSERT_FALSE(disk.crash_triggered());
    ASSERT_GT(states.size(), kTxns / 2) << "too few commits to stress";
    ASSERT_EQ(acked, states.size() - 1);
    total_writes = disk.writes_survived();
  }
  ASSERT_GT(total_writes, 20u);

  // A spread of crash points across the whole run, denser than the tier-1
  // tests but bounded so the stress suite stays fast.
  std::vector<uint64_t> points;
  for (uint64_t n = 0; n < total_writes; n += 1 + total_writes / 40) {
    points.push_back(n);
  }
  points.push_back(total_writes - 1);
  for (uint64_t n : points) {
    VerifyCrashPoint(n, GetParam(),
                     "crash after " + std::to_string(n) + " of " +
                         std::to_string(total_writes) + " writes");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashModes, WalRecoveryStress,
                         ::testing::Values(CrashWriteMode::kDropWrite,
                                           CrashWriteMode::kTornWrite),
                         [](const auto& info) {
                           return info.param == CrashWriteMode::kDropWrite
                                      ? "DropWrite"
                                      : "TornWrite";
                         });

}  // namespace
}  // namespace cobra
