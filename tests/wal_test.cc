// Write-ahead log coverage: record/page framing, log scanning, group
// commit, the no-steal write gate, logged heap-file mutations, object-store
// transactions, crash recovery (committed durable, uncommitted invisible,
// torn pages repaired), checkpoint truncation, and the wal.* telemetry
// plumbing.  The exhaustive crash-point sweep lives in crash_matrix_test.cc
// (label `crash`); the redo-twice idempotence stress in
// wal_recovery_stress_test.cc (label `stress`).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "file/heap_file.h"
#include "object/directory.h"
#include "object/object.h"
#include "object/object_store.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "service/query_service.h"
#include "storage/checksum.h"
#include "storage/disk.h"
#include "storage/faulty_disk.h"
#include "storage/slotted_page.h"
#include "wal/log_record.h"
#include "wal/wal.h"

namespace cobra {
namespace {

using wal::DecodeLogRecord;
using wal::DecodeOutcome;
using wal::EncodeLogRecord;
using wal::LogRecord;
using wal::LogRecordType;
using wal::LogScanResult;
using wal::Lsn;
using wal::ScanLog;
using wal::TxnId;
using wal::WalManager;
using wal::WalOptions;

// Shared layout: data extent at the front, log extent far behind it.
constexpr PageId kDataFirst = 0;
constexpr size_t kDataPages = 8;
constexpr PageId kLogFirst = 64;
constexpr size_t kLogPages = 64;

WalOptions LogOptions(PageId first = kLogFirst, size_t pages = kLogPages) {
  WalOptions options;
  options.log_first_page = first;
  options.log_max_pages = pages;
  return options;
}

std::vector<std::byte> PatternRecord(size_t size, uint8_t tag) {
  std::vector<std::byte> record(size);
  for (size_t i = 0; i < size; ++i) {
    record[i] = static_cast<std::byte>((i * 17 + tag) & 0xFF);
  }
  return record;
}

// ------------------------------------------------------------ record codec

TEST(LogRecordCodec, RoundTripAllTypes) {
  std::vector<LogRecord> in;
  Lsn lsn = 1;
  for (LogRecordType type :
       {LogRecordType::kBegin, LogRecordType::kHeapInsert,
        LogRecordType::kHeapUpdate, LogRecordType::kHeapDelete,
        LogRecordType::kPageFormat, LogRecordType::kPageImage,
        LogRecordType::kCommit, LogRecordType::kAbort,
        LogRecordType::kCheckpoint}) {
    LogRecord rec;
    rec.lsn = lsn++;
    rec.type = type;
    rec.txn = rec.structural() ? 0 : 7;
    rec.page = 42;
    rec.slot = 3;
    if (type == LogRecordType::kHeapInsert ||
        type == LogRecordType::kHeapUpdate) {
      rec.payload = PatternRecord(40, static_cast<uint8_t>(lsn));
    } else if (type == LogRecordType::kPageImage) {
      rec.payload = PatternRecord(256, 9);
    }
    in.push_back(rec);
  }

  std::vector<std::byte> stream;
  for (const LogRecord& rec : in) {
    EncodeLogRecord(rec, &stream);
  }

  size_t offset = 0;
  for (const LogRecord& want : in) {
    LogRecord got;
    ASSERT_EQ(DecodeLogRecord(stream, &offset, &got), DecodeOutcome::kRecord);
    EXPECT_EQ(got.lsn, want.lsn);
    EXPECT_EQ(got.txn, want.txn);
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.page, want.page);
    EXPECT_EQ(got.slot, want.slot);
    EXPECT_EQ(got.payload, want.payload);
  }
  EXPECT_EQ(offset, stream.size());
}

TEST(LogRecordCodec, CrcCatchesCorruptionAndTruncation) {
  LogRecord rec;
  rec.lsn = 5;
  rec.txn = 2;
  rec.type = LogRecordType::kHeapInsert;
  rec.page = 1;
  rec.slot = 0;
  rec.payload = PatternRecord(64, 1);
  std::vector<std::byte> stream;
  EncodeLogRecord(rec, &stream);

  // Flip one payload byte: the CRC rejects the record.
  std::vector<std::byte> corrupt = stream;
  corrupt[wal::kLogRecordHeaderSize + 10] ^= std::byte{0x04};
  size_t offset = 0;
  LogRecord out;
  EXPECT_EQ(DecodeLogRecord(corrupt, &offset, &out), DecodeOutcome::kCorrupt);

  // Cut the stream mid-record: reported as truncation, not corruption.
  std::span<const std::byte> half(stream.data(), stream.size() - 20);
  offset = 0;
  EXPECT_EQ(DecodeLogRecord(half, &offset, &out), DecodeOutcome::kTruncated);
  offset = 0;
  std::span<const std::byte> header_cut(stream.data(), 10);
  EXPECT_EQ(DecodeLogRecord(header_cut, &offset, &out),
            DecodeOutcome::kTruncated);
}

TEST(LogPageFraming, SealReadRoundTripAndCorruption) {
  const size_t ps = 1024;
  std::vector<std::byte> page(ps, std::byte{0});
  // Payload reaching past the page midpoint, so a half-torn page actually
  // loses content.
  std::vector<std::byte> payload = PatternRecord(900, 5);
  std::memcpy(page.data() + wal::kLogPageHeaderSize, payload.data(),
              payload.size());
  wal::LogPageHeader in;
  in.used = 900;
  in.continues = true;
  in.epoch = 3;
  in.batch_first_lsn = 77;
  wal::SealLogPage(page.data(), ps, in);

  wal::LogPageHeader out;
  ASSERT_TRUE(wal::ReadLogPage(page.data(), ps, &out));
  EXPECT_EQ(out.used, 900);
  EXPECT_TRUE(out.continues);
  EXPECT_EQ(out.epoch, 3);
  EXPECT_EQ(out.batch_first_lsn, 77u);

  // A torn page (half persisted) fails the CRC.
  std::vector<std::byte> torn = page;
  std::fill(torn.begin() + static_cast<long>(ps / 2), torn.end(),
            std::byte{0});
  EXPECT_FALSE(wal::ReadLogPage(torn.data(), ps, &out));
}

// ---------------------------------------------------------------- log scan

TEST(WalScan, EmptyExtentIsFreshLog) {
  SimulatedDisk disk;
  LogScanResult scan = ScanLog(&disk, kLogFirst, kLogPages);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.next_lsn, 1u);
  EXPECT_EQ(scan.next_page, kLogFirst);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.complete_batches, 0u);
}

TEST(WalScan, TornTailIsDiscardedEarlierBatchesSurvive) {
  SimulatedDisk disk;
  size_t first_batch_records = 0;
  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    auto t1 = wal.Begin();
    ASSERT_TRUE(t1.ok());
    auto body = PatternRecord(40, 1);
    ASSERT_TRUE(wal.LogHeapInsert(*t1, 0, 0, body).ok());
    ASSERT_TRUE(wal.Commit(*t1).ok());  // batch 1: begin, insert, commit
    first_batch_records = 3;
    auto t2 = wal.Begin();
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE(wal.LogHeapInsert(*t2, 0, 1, body).ok());
    ASSERT_TRUE(wal.Commit(*t2).ok());  // batch 2
  }

  LogScanResult intact = ScanLog(&disk, kLogFirst, kLogPages);
  ASSERT_EQ(intact.records.size(), 6u);
  ASSERT_GE(intact.next_page, kLogFirst + 2);

  // Tear the last written log page — flip a byte inside its used payload —
  // and the scan drops exactly the final batch.  (Zeroing the unused tail
  // would be a harmless no-op: the tail is already zero and the CRC covers
  // it as such.)
  std::vector<std::byte> raw(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(intact.next_page - 1, raw.data()).ok());
  raw[wal::kLogPageHeaderSize + 5] ^= std::byte{0x01};
  ASSERT_TRUE(disk.WritePage(intact.next_page - 1, raw.data()).ok());

  LogScanResult torn = ScanLog(&disk, kLogFirst, kLogPages);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.records.size(), first_batch_records);
  for (size_t i = 0; i < torn.records.size(); ++i) {
    EXPECT_EQ(torn.records[i].lsn, i + 1);  // dense LSNs from 1
  }
}

// --------------------------------------------------------- manager basics

TEST(WalManager, AppendsRequireRecover) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  EXPECT_TRUE(wal.Begin().status().IsInvalidArgument());
  // The gate stays open while the WAL is idle: read-only stacks that never
  // bootstrap the log must keep writing pages unchanged.
  std::vector<std::byte> page(disk.page_size(), std::byte{0});
  EXPECT_TRUE(wal.BeforePageWrite(0, page.data(), page.size()).ok());
  ASSERT_TRUE(wal.Recover().ok());
  EXPECT_TRUE(wal.Begin().ok());
  EXPECT_TRUE(wal.Recover().IsInvalidArgument());  // once only
}

TEST(WalManager, GroupCommitMakesDenseDurableLog) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  for (int i = 0; i < 3; ++i) {
    auto body = PatternRecord(40, static_cast<uint8_t>(i));
    ASSERT_TRUE(wal.LogHeapInsert(*txn, 0, static_cast<uint16_t>(i), body)
                    .ok());
  }
  ASSERT_TRUE(wal.Commit(*txn).ok());
  EXPECT_EQ(wal.durable_lsn(), 5u);  // begin + 3 inserts + commit
  EXPECT_EQ(wal.active_txns(), 0u);

  wal::WalStats stats = wal.stats();
  EXPECT_EQ(stats.records_appended, 5u);
  EXPECT_EQ(stats.begins, 1u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_GE(stats.batches_flushed, 1u);
  EXPECT_GE(stats.log_pages_written, 1u);

  LogScanResult scan = ScanLog(&disk, kLogFirst, kLogPages);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records.front().type, LogRecordType::kBegin);
  EXPECT_EQ(scan.records.back().type, LogRecordType::kCommit);
  EXPECT_EQ(scan.next_lsn, 6u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.complete_batches, stats.batches_flushed);
}

TEST(WalManager, UnknownTxnRejected) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  auto body = PatternRecord(16, 0);
  EXPECT_TRUE(wal.LogHeapInsert(99, 0, 0, body).status().IsInvalidArgument());
  EXPECT_TRUE(wal.Commit(99).IsInvalidArgument());
  EXPECT_TRUE(wal.Abort(99).IsInvalidArgument());
  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(wal.Commit(*txn).ok());
  EXPECT_TRUE(wal.Commit(*txn).IsInvalidArgument());  // already closed
}

TEST(WalManager, FullLogExtentSurfacesResourceExhausted) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions(kLogFirst, /*pages=*/1));
  ASSERT_TRUE(wal.Recover().ok());
  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  // Two 600-byte bodies cannot fit one 1 KB log page: the flush must fail
  // rather than wrap or overwrite.
  for (int i = 0; i < 2; ++i) {
    auto body = PatternRecord(600, static_cast<uint8_t>(i));
    ASSERT_TRUE(wal.LogHeapInsert(*txn, 0, static_cast<uint16_t>(i), body)
                    .ok());
  }
  EXPECT_TRUE(wal.Commit(*txn).IsResourceExhausted());
  // The failure is sticky: the log is dead until truncated.
  EXPECT_TRUE(wal.Begin().status().IsResourceExhausted());
}

// ------------------------------------------------------ logged heap files

TEST(LoggedHeapFile, RejectsUnloggedMutations) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);

  auto body = PatternRecord(40, 1);
  EXPECT_TRUE(file.Append(body).status().IsInvalidArgument());
  EXPECT_TRUE(file.InsertAtPage(0, body).status().IsInvalidArgument());
  EXPECT_TRUE(file.Delete(RecordId{kDataFirst, 0}).IsInvalidArgument());
  EXPECT_TRUE(
      file.Update(RecordId{kDataFirst, 0}, body).IsInvalidArgument());
  EXPECT_EQ(file.record_count(), 0u);
}

TEST(LoggedHeapFile, TxnMutationsStampMonotonePageLsn) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);

  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  auto rid = file.AppendTxn(*txn, PatternRecord(40, 1));
  ASSERT_TRUE(rid.ok());

  auto page_lsn = [&](PageId page) {
    auto guard = buffer.FetchPage(page);
    EXPECT_TRUE(guard.ok());
    SlottedPage view(guard->data().data(), disk.page_size());
    return view.lsn();
  };
  uint64_t after_insert = page_lsn(rid->page);
  EXPECT_GT(after_insert, 0u);

  ASSERT_TRUE(file.UpdateTxn(*txn, *rid, PatternRecord(40, 2)).ok());
  uint64_t after_update = page_lsn(rid->page);
  EXPECT_GT(after_update, after_insert);

  ASSERT_TRUE(file.DeleteTxn(*txn, *rid).ok());
  EXPECT_GT(page_lsn(rid->page), after_update);
  ASSERT_TRUE(wal.Commit(*txn).ok());
}

TEST(WalNoSteal, UncommittedPagesNeverReachDisk) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);

  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  auto rid = file.AppendTxn(*txn, PatternRecord(40, 1));
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE(wal.IsUncommitted(rid->page));

  // Flushing is a silent no-op for the uncommitted page.
  ASSERT_TRUE(buffer.FlushPage(rid->page).ok());
  ASSERT_TRUE(buffer.FlushAll().ok());
  EXPECT_FALSE(disk.Exists(rid->page));

  ASSERT_TRUE(wal.Commit(*txn).ok());
  EXPECT_FALSE(wal.IsUncommitted(rid->page));
  ASSERT_TRUE(buffer.FlushAll().ok());
  EXPECT_TRUE(disk.Exists(rid->page));
  // The write-back passed through the gate: a page image is in the log.
  EXPECT_GE(wal.stats().images_logged, 1u);
}

TEST(WalNoSteal, FullPoolOfUncommittedPagesRefusesToSteal) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 1});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);

  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(file.AppendTxn(*txn, PatternRecord(40, 1)).ok());

  // The only frame holds uncommitted data: it must not be stolen, so there
  // is no frame for a new page.
  EXPECT_TRUE(buffer.CreatePage(40).status().IsResourceExhausted());

  ASSERT_TRUE(wal.Commit(*txn).ok());
  // Committed, the frame is evictable (write-back goes through the gate).
  EXPECT_TRUE(buffer.CreatePage(40).ok());
  EXPECT_TRUE(disk.Exists(kDataFirst));
}

// ------------------------------------------------------------- recovery

// Reads all live records of the data extent after reattaching, in scan
// order.
std::vector<std::vector<std::byte>> ScanExtent(BufferManager* buffer) {
  std::vector<std::vector<std::byte>> records;
  auto file = HeapFile::Open(buffer, kDataFirst, kDataPages);
  EXPECT_TRUE(file.ok());
  if (!file.ok()) return records;
  auto cursor = file->Scan();
  RecordId rid;
  std::vector<std::byte> record;
  for (;;) {
    auto more = cursor.Next(&rid, &record);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    records.push_back(record);
  }
  return records;
}

void ExpectDataExtentChecksumClean(SimulatedDisk* disk) {
  std::vector<std::byte> raw(disk->page_size());
  for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
    if (!disk->Exists(id)) continue;
    ASSERT_TRUE(disk->ReadPage(id, raw.data()).ok());
    EXPECT_TRUE(VerifyPageChecksum(raw.data(), raw.size(), id).ok())
        << "page " << id;
  }
}

TEST(WalRecovery, CommittedDurableUncommittedInvisible) {
  FaultInjectingDisk disk(FaultProfile{});
  auto r1 = PatternRecord(40, 1);
  auto r2 = PatternRecord(40, 2);
  auto r3 = PatternRecord(40, 3);
  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);

    auto t1 = wal.Begin();
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(file.AppendTxn(*t1, r1).ok());
    ASSERT_TRUE(file.AppendTxn(*t1, r2).ok());
    ASSERT_TRUE(wal.Commit(*t1).ok());

    // A second transaction appends and even gets its records durably into
    // the log (Flush), but never commits.
    auto t2 = wal.Begin();
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE(file.AppendTxn(*t2, r3).ok());
    ASSERT_TRUE(wal.Flush().ok());

    // Power cut: every write from here on fails; no data page was ever
    // written back.
    disk.ScheduleCrash(0, CrashWriteMode::kDropWrite);
  }

  // Restart.
  disk.ClearCrash();
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  wal::WalStats stats = wal.stats();
  EXPECT_EQ(stats.recovered_commits, 1u);
  EXPECT_EQ(stats.discarded_txns, 1u);
  EXPECT_GE(stats.redo_applied, 2u);  // the two committed inserts
  EXPECT_GE(stats.redo_skipped_uncommitted, 1u);
  EXPECT_GE(stats.pages_repaired, 1u);

  ExpectDataExtentChecksumClean(&disk);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  auto records = ScanExtent(&buffer);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], r1);
  EXPECT_EQ(records[1], r2);
}

TEST(WalRecovery, TornDataPageRepairedFromLoggedImage) {
  SimulatedDisk disk;
  auto r1 = PatternRecord(40, 1);
  auto r2 = PatternRecord(40, 2);
  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);
    auto txn = wal.Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(file.AppendTxn(*txn, r1).ok());
    ASSERT_TRUE(file.AppendTxn(*txn, r2).ok());
    ASSERT_TRUE(wal.Commit(*txn).ok());
    ASSERT_TRUE(buffer.FlushAll().ok());  // image logged, page written
    ASSERT_TRUE(buffer.DropAll().ok());
  }

  // Tear the data page behind everyone's back: keep the head, zero the
  // tail — exactly what a power cut mid-sector-run leaves.
  std::vector<std::byte> raw(disk.page_size());
  ASSERT_TRUE(disk.ReadPage(kDataFirst, raw.data()).ok());
  std::fill(raw.begin() + static_cast<long>(disk.page_size() / 2), raw.end(),
            std::byte{0});
  ASSERT_TRUE(disk.WritePage(kDataFirst, raw.data()).ok());
  ASSERT_FALSE(
      VerifyPageChecksum(raw.data(), raw.size(), kDataFirst).ok());

  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  EXPECT_GE(wal.stats().redo_images, 1u);
  EXPECT_GE(wal.stats().pages_repaired, 1u);

  ExpectDataExtentChecksumClean(&disk);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  auto records = ScanExtent(&buffer);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], r1);
  EXPECT_EQ(records[1], r2);
}

TEST(WalRecovery, RunningRecoveryTwiceIsBitIdentical) {
  FaultInjectingDisk disk(FaultProfile{});
  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);
    auto txn = wal.Begin();
    ASSERT_TRUE(txn.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          file.AppendTxn(*txn, PatternRecord(40, static_cast<uint8_t>(i)))
              .ok());
    }
    ASSERT_TRUE(wal.Commit(*txn).ok());
    disk.ScheduleCrash(0, CrashWriteMode::kDropWrite);
  }
  disk.ClearCrash();

  auto snapshot = [&] {
    std::vector<std::vector<std::byte>> pages;
    std::vector<std::byte> raw(disk.page_size());
    for (PageId id = kDataFirst; id < kDataFirst + kDataPages; ++id) {
      if (disk.Exists(id)) {
        EXPECT_TRUE(disk.ReadPage(id, raw.data()).ok());
        pages.push_back(raw);
      } else {
        pages.emplace_back();
      }
    }
    return pages;
  };

  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    EXPECT_GT(wal.stats().redo_applied, 0u);
  }
  auto first = snapshot();
  {
    // A crash during recovery means recovery runs again from the top: the
    // replay must be idempotent.
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    EXPECT_GT(wal.stats().redo_skipped_stale, 0u);
  }
  EXPECT_EQ(first, snapshot());
}

TEST(WalCheckpoint, TruncatesLogAndRecoversAcrossIt) {
  FaultInjectingDisk disk(FaultProfile{});
  auto r1 = PatternRecord(40, 1);
  auto r2 = PatternRecord(40, 2);
  {
    WalManager wal(&disk, LogOptions());
    ASSERT_TRUE(wal.Recover().ok());
    BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
    buffer.set_write_gate(&wal);
    HeapFile file(&buffer, kDataFirst, kDataPages);
    file.set_wal(&wal);

    auto t1 = wal.Begin();
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(file.AppendTxn(*t1, r1).ok());
    ASSERT_TRUE(wal.Commit(*t1).ok());
    ASSERT_TRUE(wal.Checkpoint(&buffer).ok());
    EXPECT_EQ(wal.stats().checkpoints, 1u);

    // The truncated log holds exactly the checkpoint record, a bumped
    // epoch, and restarts at the extent head.
    LogScanResult scan = ScanLog(&disk, kLogFirst, kLogPages);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].type, LogRecordType::kCheckpoint);
    EXPECT_EQ(scan.epoch, 2u);

    auto t2 = wal.Begin();
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE(file.AppendTxn(*t2, r2).ok());
    ASSERT_TRUE(wal.Commit(*t2).ok());
    disk.ScheduleCrash(0, CrashWriteMode::kDropWrite);
  }

  disk.ClearCrash();
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  // Only the post-checkpoint transaction replays; the pre-checkpoint data
  // is already durable on its page.
  EXPECT_EQ(wal.stats().recovered_commits, 1u);
  ExpectDataExtentChecksumClean(&disk);
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  auto records = ScanExtent(&buffer);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], r1);
  EXPECT_EQ(records[1], r2);
}

TEST(WalCheckpoint, RequiresQuiescence) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 16});
  buffer.set_write_gate(&wal);
  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(wal.Checkpoint(&buffer).IsInvalidArgument());
  ASSERT_TRUE(wal.Commit(*txn).ok());
  EXPECT_TRUE(wal.Checkpoint(&buffer).ok());
}

// ---------------------------------------------------- object-store txns

ObjectData MakeObject(Oid oid, int32_t tag) {
  ObjectData obj;
  obj.oid = oid;
  obj.type_id = 1;
  obj.fields = {tag, tag + 1, tag + 2, tag + 3};
  obj.refs = {};
  return obj;
}

TEST(ObjectStoreTxn, CommitMakesVisibleAbortRollsBack) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 32});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);
  HashDirectory directory;
  ObjectStore store(&buffer, &directory);
  store.set_wal(&wal);

  ObjectData a = MakeObject(kInvalidOid, 100);
  auto t1 = store.BeginTxn();
  ASSERT_TRUE(t1.ok());
  auto a_oid = store.InsertTxn(*t1, a, &file);
  ASSERT_TRUE(a_oid.ok());
  ASSERT_TRUE(store.CommitTxn(*t1).ok());
  a.oid = *a_oid;
  auto got = store.Get(*a_oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, a);

  // Abort: the inserted object vanishes, the update is physically undone.
  auto t2 = store.BeginTxn();
  ASSERT_TRUE(t2.ok());
  auto b_oid = store.InsertTxn(*t2, MakeObject(kInvalidOid, 200), &file);
  ASSERT_TRUE(b_oid.ok());
  ObjectData a2 = a;
  a2.fields[0] = 999;
  ASSERT_TRUE(store.UpdateTxn(*t2, a2, &file).ok());
  ASSERT_TRUE(store.AbortTxn(*t2).ok());
  EXPECT_TRUE(store.Get(*b_oid).status().IsNotFound());
  got = store.Get(*a_oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, a);  // pre-update image restored

  // Removal commits durably.
  auto t3 = store.BeginTxn();
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(store.RemoveTxn(*t3, *a_oid, &file).ok());
  ASSERT_TRUE(store.CommitTxn(*t3).ok());
  EXPECT_TRUE(store.Get(*a_oid).status().IsNotFound());

  EXPECT_EQ(store.stats().txns_committed, 2u);
  EXPECT_EQ(store.stats().txns_aborted, 1u);
  EXPECT_EQ(wal.active_txns(), 0u);
}

// -------------------------------------------------------------- telemetry

TEST(WalObs, FlushEventsBindLazilyIntoRegistry) {
  obs::Registry registry;
  obs::RegistryPublisher publisher(&registry);
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  wal.set_listener(&publisher);
  ASSERT_TRUE(wal.Recover().ok());

  // No flush yet: the wal.* instruments must not exist (lazy binding keeps
  // read-only registry dumps identical to the pre-WAL goldens).
  EXPECT_EQ(registry.FindCounter("wal.flushes"), nullptr);

  auto txn = wal.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(wal.LogHeapInsert(*txn, 0, 0, PatternRecord(40, 1)).ok());
  ASSERT_TRUE(wal.Commit(*txn).ok());

  const obs::Counter* flushes = registry.FindCounter("wal.flushes");
  ASSERT_NE(flushes, nullptr);
  EXPECT_GE(flushes->value(), 1u);
  const obs::Counter* records = registry.FindCounter("wal.records");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->value(), 3u);  // begin + insert + commit
  const obs::Counter* pages = registry.FindCounter("wal.pages");
  ASSERT_NE(pages, nullptr);
  EXPECT_GE(pages->value(), 1u);
}

// ------------------------------------------------------- service writes

TEST(ServiceWrite, ExecuteWriteCommitAndAbort) {
  SimulatedDisk disk;
  WalManager wal(&disk, LogOptions());
  ASSERT_TRUE(wal.Recover().ok());
  BufferManager buffer(&disk, BufferOptions{.num_frames = 32});
  buffer.set_write_gate(&wal);
  HeapFile file(&buffer, kDataFirst, kDataPages);
  file.set_wal(&wal);
  HashDirectory directory;

  service::ServiceOptions options;
  options.num_workers = 1;
  options.wal = &wal;
  options.write_file = &file;
  options.next_oid = 1;
  service::QueryService service(&buffer, &directory, options);

  service::WriteJob insert_job;
  insert_job.client = "w0";
  for (int i = 0; i < 2; ++i) {
    service::WriteOp op;
    op.kind = service::WriteOp::Kind::kInsert;
    op.obj = MakeObject(static_cast<Oid>(10 + i), 100 + i);
    insert_job.ops.push_back(op);
  }
  service::WriteResult committed = service.ExecuteWrite(insert_job);
  ASSERT_TRUE(committed.status.ok()) << committed.status.ToString();
  EXPECT_EQ(committed.ops_applied, 2u);
  EXPECT_FALSE(committed.aborted);
  EXPECT_GT(committed.txn, 0u);

  // An aborted job leaves no trace.
  service::WriteJob abort_job;
  abort_job.client = "w1";
  abort_job.abort = true;
  service::WriteOp update;
  update.kind = service::WriteOp::Kind::kUpdate;
  update.obj = MakeObject(10, 777);
  abort_job.ops.push_back(update);
  service::WriteOp extra;
  extra.kind = service::WriteOp::Kind::kInsert;
  extra.obj = MakeObject(12, 300);
  abort_job.ops.push_back(extra);
  service::WriteResult aborted = service.ExecuteWrite(abort_job);
  ASSERT_TRUE(aborted.status.ok()) << aborted.status.ToString();
  EXPECT_TRUE(aborted.aborted);

  // A remove commits.
  service::WriteJob remove_job;
  service::WriteOp remove;
  remove.kind = service::WriteOp::Kind::kRemove;
  remove.oid = 11;
  remove_job.ops.push_back(remove);
  service::WriteResult removed = service.ExecuteWrite(remove_job);
  ASSERT_TRUE(removed.status.ok());

  service.Drain();
  ObjectStore reader(&buffer, &directory);
  auto obj10 = reader.Get(10);
  ASSERT_TRUE(obj10.ok());
  EXPECT_EQ(obj10->fields[0], 100);  // aborted update never stuck
  EXPECT_TRUE(reader.Get(11).status().IsNotFound());
  EXPECT_TRUE(reader.Get(12).status().IsNotFound());
  EXPECT_EQ(wal.stats().commits, 2u);
  EXPECT_EQ(wal.stats().aborts, 1u);
}

TEST(ServiceWrite, RequiresConfiguredWritePath) {
  SimulatedDisk disk;
  BufferManager buffer(&disk, BufferOptions{.num_frames = 8});
  HashDirectory directory;
  service::QueryService service(&buffer, &directory, {});
  service::WriteJob job;
  service::WriteOp op;
  op.kind = service::WriteOp::Kind::kInsert;
  op.obj = MakeObject(1, 1);
  job.ops.push_back(op);
  EXPECT_TRUE(service.ExecuteWrite(job).status.IsInvalidArgument());
}

}  // namespace
}  // namespace cobra
