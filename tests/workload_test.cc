#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "assembly/naive.h"
#include "workload/acob.h"
#include "workload/cad.h"
#include "workload/genealogy.h"

namespace cobra {
namespace {

TEST(AcobTest, ComponentsPerComplex) {
  EXPECT_EQ(AcobComponentsPerComplex(1), 1u);
  EXPECT_EQ(AcobComponentsPerComplex(2), 3u);
  EXPECT_EQ(AcobComponentsPerComplex(3), 7u);  // the paper's shape
  EXPECT_EQ(AcobComponentsPerComplex(4), 15u);
}

TEST(AcobTest, BuildBasicProperties) {
  AcobOptions options;
  options.num_complex_objects = 50;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->roots.size(), 50u);
  EXPECT_EQ((*db)->total_objects, 50u * 7u);
  EXPECT_TRUE((*db)->tmpl.Validate().ok());
  EXPECT_EQ((*db)->nodes.size(), 7u);
  EXPECT_TRUE((*db)->shared_pool.empty());
  // 350 objects at 9 per page.
  EXPECT_EQ((*db)->data_pages, (350 + 8) / 9);
}

TEST(AcobTest, DeterministicInSeed) {
  AcobOptions options;
  options.num_complex_objects = 20;
  options.seed = 99;
  auto a = BuildAcobDatabase(options);
  auto b = BuildAcobDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->roots, (*b)->roots);
  // Same physical placement too.
  for (Oid oid : (*a)->roots) {
    EXPECT_EQ((*a)->store->Locate(oid)->page, (*b)->store->Locate(oid)->page);
  }
}

TEST(AcobTest, LogicalContentIndependentOfClustering) {
  // Clustering changes placement, never structure: same seed must wire the
  // same OIDs regardless of clustering policy.
  AcobOptions options;
  options.num_complex_objects = 15;
  options.seed = 5;
  options.clustering = Clustering::kUnclustered;
  auto a = BuildAcobDatabase(options);
  options.clustering = Clustering::kInterObject;
  auto b = BuildAcobDatabase(options);
  options.clustering = Clustering::kIntraObject;
  auto c = BuildAcobDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ((*a)->roots, (*b)->roots);
  EXPECT_EQ((*a)->roots, (*c)->roots);
  for (Oid root : (*a)->roots) {
    auto oa = (*a)->store->Get(root);
    auto ob = (*b)->store->Get(root);
    auto oc = (*c)->store->Get(root);
    ASSERT_TRUE(oa.ok() && ob.ok() && oc.ok());
    EXPECT_EQ(oa->refs, ob->refs);
    EXPECT_EQ(oa->refs, oc->refs);
    EXPECT_EQ(oa->fields, ob->fields);
  }
}

TEST(AcobTest, InterObjectClustersInDistinctExtents) {
  AcobOptions options;
  options.num_complex_objects = 40;
  options.clustering = Clustering::kInterObject;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  // Each component type lives entirely inside one extent of
  // cluster_extent_pages pages, and distinct types use distinct extents.
  std::set<PageId> extents_seen;
  for (Oid root : (*db)->roots) {
    auto obj = (*db)->store->Get(root);
    ASSERT_TRUE(obj.ok());
    auto loc = (*db)->store->Locate(root);
    ASSERT_TRUE(loc.ok());
    extents_seen.insert(loc->page / options.cluster_extent_pages);
  }
  // All roots (type A) in one extent.
  EXPECT_EQ(extents_seen.size(), 1u);
  // Check a leaf type lands in a different extent.
  auto root_obj = (*db)->store->Get((*db)->roots[0]);
  ASSERT_TRUE(root_obj.ok());
  auto left = (*db)->store->Locate(root_obj->refs[0]);
  ASSERT_TRUE(left.ok());
  EXPECT_NE(left->page / options.cluster_extent_pages, *extents_seen.begin());
}

TEST(AcobTest, IntraObjectKeepsComplexObjectsContiguous) {
  AcobOptions options;
  options.num_complex_objects = 30;
  options.clustering = Clustering::kIntraObject;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  // A complex object's 7 components span at most 2 adjacent pages
  // (7 consecutive records at 9 records per page).
  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  for (size_t i = 0; i < 5; ++i) {
    ObjectArena arena;
    auto obj = naive.AssembleOne((*db)->roots[i * 5], &arena);
    ASSERT_TRUE(obj.ok());
    PageId min_page = ~PageId{0};
    PageId max_page = 0;
    VisitAssembled(*obj, [&](const AssembledObject& node) {
      auto loc = (*db)->store->Locate(node.oid);
      ASSERT_TRUE(loc.ok());
      min_page = std::min(min_page, loc->page);
      max_page = std::max(max_page, loc->page);
    });
    EXPECT_LE(max_page - min_page, 1u);
  }
}

TEST(AcobTest, SharingPoolWiredIntoTemplatesAndRefs) {
  AcobOptions options;
  options.num_complex_objects = 100;
  options.sharing = 0.25;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->shared_pool.size(), 25u);
  EXPECT_TRUE((*db)->nodes[6]->shared);
  EXPECT_DOUBLE_EQ((*db)->nodes[6]->sharing_degree, 0.25);
  // Every complex object's last leaf reference lands in the pool.
  std::unordered_set<Oid> pool((*db)->shared_pool.begin(),
                               (*db)->shared_pool.end());
  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  auto obj = naive.AssembleOne((*db)->roots[0], &arena);
  ASSERT_TRUE(obj.ok());
  const AssembledObject* g = FindByType(*obj, 7);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(pool.contains(g->oid));
  // Total objects: 100 complex x 6 private + 25 pool.
  EXPECT_EQ((*db)->total_objects, 100u * 6u + 25u);
}

TEST(AcobTest, ColdRestartResetsMeasurement) {
  AcobOptions options;
  options.num_complex_objects = 10;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  // First access faults pages in.
  ASSERT_TRUE((*db)->store->Get((*db)->roots[0]).ok());
  EXPECT_GT((*db)->disk->stats().reads, 0u);
  ASSERT_TRUE((*db)->ColdRestart().ok());
  EXPECT_EQ((*db)->disk->stats().reads, 0u);
  EXPECT_EQ((*db)->buffer->stats().requests(), 0u);
  // Data still intact after restart.
  auto obj = (*db)->store->Get((*db)->roots[0]);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->type_id, 1u);
}

TEST(AcobTest, RejectsBadOptions) {
  AcobOptions options;
  options.num_complex_objects = 0;
  EXPECT_TRUE(BuildAcobDatabase(options).status().IsInvalidArgument());
  options.num_complex_objects = 10;
  options.sharing = 1.5;
  EXPECT_TRUE(BuildAcobDatabase(options).status().IsInvalidArgument());
  options.sharing = 0;
  options.levels = 0;
  EXPECT_TRUE(BuildAcobDatabase(options).status().IsInvalidArgument());
}

TEST(AcobTest, ExtentTooSmallDetected) {
  AcobOptions options;
  options.num_complex_objects = 10000;
  options.clustering = Clustering::kInterObject;
  options.cluster_extent_pages = 10;
  EXPECT_TRUE(BuildAcobDatabase(options).status().IsInvalidArgument());
}

TEST(AcobTest, PaperObjectShape) {
  AcobOptions options;
  options.num_complex_objects = 3;
  auto db = BuildAcobDatabase(options);
  ASSERT_TRUE(db.ok());
  auto obj = (*db)->store->Get((*db)->roots[0]);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->fields.size(), 4u);
  EXPECT_EQ(obj->refs.size(), 8u);
  EXPECT_EQ(obj->SerializedSize(), 96u);  // the paper's record size
}

// ----------------------------------------------------------- genealogy

TEST(GenealogyTest, BuildProperties) {
  GenealogyOptions options;
  options.num_people = 200;
  auto db = BuildGenealogyDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->persons.size(), 200u);
  EXPECT_TRUE((*db)->tmpl.Validate().ok());
  EXPECT_FALSE((*db)->tmpl.IsRecursive());
  EXPECT_EQ((*db)->tmpl.ReachableNodeCount(), 4u);  // Figure 2's shape
}

TEST(GenealogyTest, FathersPrecedeChildren) {
  GenealogyOptions options;
  options.num_people = 100;
  auto db = BuildGenealogyDatabase(options);
  ASSERT_TRUE(db.ok());
  std::unordered_set<Oid> seen;
  for (Oid oid : (*db)->persons) {
    auto person = (*db)->store->Get(oid);
    ASSERT_TRUE(person.ok());
    Oid father = person->refs[kPersonFatherSlot];
    if (father != kInvalidOid) {
      EXPECT_TRUE(seen.contains(father)) << "father of " << oid;
    }
    // Everyone has a residence.
    EXPECT_NE(person->refs[kPersonResidenceSlot], kInvalidOid);
    seen.insert(oid);
  }
}

TEST(GenealogyTest, NaiveQueryFindsSameCityPairs) {
  GenealogyOptions options;
  options.num_people = 300;
  options.same_city_fraction = 0.5;
  auto db = BuildGenealogyDatabase(options);
  ASSERT_TRUE(db.ok());
  auto matches = LivesCloseToFatherNaive(db->get());
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(matches->size(), 0u);
  EXPECT_LT(matches->size(), 300u);
  // Verify each reported match truly lives in the father's city.
  for (Oid oid : *matches) {
    auto person = (*db)->store->Get(oid);
    ASSERT_TRUE(person.ok());
    auto father = (*db)->store->Get(person->refs[kPersonFatherSlot]);
    ASSERT_TRUE(father.ok());
    auto res = (*db)->store->Get(person->refs[kPersonResidenceSlot]);
    auto fres = (*db)->store->Get(father->refs[kPersonResidenceSlot]);
    ASSERT_TRUE(res.ok() && fres.ok());
    EXPECT_EQ(res->fields[kResidenceCityField],
              fres->fields[kResidenceCityField]);
  }
}

// ----------------------------------------------------------------- CAD

TEST(CadTest, BuildProperties) {
  CadOptions options;
  options.num_assemblies = 20;
  auto db = BuildCadDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->roots.size(), 20u);
  EXPECT_EQ((*db)->standard_parts.size(), 40u);
  EXPECT_TRUE((*db)->tmpl.Validate().ok());
  EXPECT_TRUE((*db)->tmpl.IsRecursive());
}

TEST(CadTest, NaiveAssemblyBoundedByDepth) {
  CadOptions options;
  options.num_assemblies = 5;
  options.depth = 3;
  options.fanout = 2;
  auto db = BuildCadDatabase(options);
  ASSERT_TRUE(db.ok());
  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  auto obj = naive.AssembleOne((*db)->roots[0], &arena);
  ASSERT_TRUE(obj.ok());
  ASSERT_NE(*obj, nullptr);
  size_t count = CountAssembled(*obj);
  // Full binary BOM of depth 3: at most 2^0+2^1+2^2+2^3 = 15 distinct
  // parts (fewer when standard parts are shared).
  EXPECT_GT(count, 1u);
  EXPECT_LE(count, 15u);
}

TEST(CadTest, StandardPartsShared) {
  CadOptions options;
  options.num_assemblies = 30;
  options.standard_fraction = 1.0;  // all leaves standard
  options.depth = 2;
  options.fanout = 2;
  auto db = BuildCadDatabase(options);
  ASSERT_TRUE(db.ok());
  std::unordered_set<Oid> pool((*db)->standard_parts.begin(),
                               (*db)->standard_parts.end());
  NaiveAssembler naive((*db)->store.get(), &(*db)->tmpl);
  ObjectArena arena;
  for (Oid root : (*db)->roots) {
    auto obj = naive.AssembleOne(root, &arena);
    ASSERT_TRUE(obj.ok());
    VisitAssembled(*obj, [&](const AssembledObject& node) {
      if (node.fields[kPartLevelField] == options.depth) {
        EXPECT_TRUE(pool.contains(node.oid));
      }
    });
  }
}

TEST(CadTest, RejectsBadOptions) {
  CadOptions options;
  options.fanout = 9;
  EXPECT_TRUE(BuildCadDatabase(options).status().IsInvalidArgument());
  options.fanout = 2;
  options.depth = 0;
  EXPECT_TRUE(BuildCadDatabase(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cobra
