#!/usr/bin/env python3
"""Golden-file checker for the deterministic bench JSON outputs.

The fig* benchmarks drive a simulated disk, so every I/O metric (reads,
seek pages, buffer hits, ...) is bit-for-bit reproducible across runs and
machines.  Wall-clock derived values are not: any histogram or field whose
key ends in `_ns` is stripped before comparison.

Usage:
  bench_golden.py extract <run.json> <golden.json>
      Normalize a bench --json capture and write it as a golden file.
  bench_golden.py check <golden.json> <run.json>
      Normalize both sides and compare; exit 1 with a diff on mismatch.
"""

import difflib
import json
import sys


def strip_nondeterministic(node):
    """Recursively drops object keys ending in `_ns` (timing data)."""
    if isinstance(node, dict):
        return {
            key: strip_nondeterministic(value)
            for key, value in node.items()
            if not key.endswith("_ns")
        }
    if isinstance(node, list):
        return [strip_nondeterministic(item) for item in node]
    return node


def normalize(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    return json.dumps(strip_nondeterministic(data), indent=2, sort_keys=True)


def main(argv):
    if len(argv) != 4 or argv[1] not in ("extract", "check"):
        sys.stderr.write(__doc__)
        return 2
    mode, a, b = argv[1], argv[2], argv[3]
    if mode == "extract":
        with open(b, "w", encoding="utf-8") as f:
            f.write(normalize(a) + "\n")
        print(f"wrote {b}")
        return 0
    golden = normalize(a).splitlines(keepends=True)
    actual = normalize(b).splitlines(keepends=True)
    if golden == actual:
        print(f"OK: {b} matches {a}")
        return 0
    sys.stderr.write(f"MISMATCH: {b} differs from golden {a}\n")
    sys.stderr.writelines(
        difflib.unified_diff(golden, actual, fromfile=a, tofile=b)
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
