#!/usr/bin/env python3
"""Golden-file checker for the deterministic bench JSON outputs.

The fig* benchmarks drive a simulated disk, so every I/O metric (reads,
seek pages, buffer hits, ...) is bit-for-bit reproducible across runs and
machines.  Wall-clock derived values are not: any histogram or field whose
key ends in `_ns` is stripped before comparison.

Usage:
  bench_golden.py extract <run.json> <golden.json>
      Normalize a bench --json capture and write it as a golden file.
  bench_golden.py check <golden.json> <run.json>
      Normalize both sides and compare; exit 1 with a diff on mismatch.
  bench_golden.py crosscheck <reference.json> <run.json>
      Compare the *I/O subtrees* of runs that describe the same
      configuration in two different benches.  Runs are matched by
      (clustering, scheduler, num_complex_objects); for each pair the
      disk/buffer/assembly stats, seek histogram, refetched_pages and
      avg_seek must be identical.  Used to pin bench/multi_client.cc
      --clients 1 to the fig13 single-client numbers: same workload, same
      metrics, different machinery (query service + async disk + sharded
      pool vs. the direct single-threaded path).  Bench-specific fields
      (labels, registry snapshots, client counts) are ignored.
  bench_golden.py iobatch <seed.json> <iobatch.json>
      Assert the vectored-I/O win: over the inter-object-clustered elevator
      runs of a fig13 capture, the --io-batch run must issue at least 30%
      fewer disk read calls than the single-page seed and must not travel
      more total seek pages.  (Non-elevator and non-inter-object runs are
      excluded: position-blind schedulers pop single-ref runs, so coalescing
      never engages for them.)
  bench_golden.py spindles <seed.json> <array.json>
      Assert the disk-array win: for every configuration shared between a
      single-spindle capture and a --spindles N capture, the array run must
      issue exactly as many disk reads (striping relocates pages, it never
      adds I/O) with per-run non-increasing read seek pages, and the
      aggregate seek pages across matched runs must be strictly lower.
      Also verifies conservation: wherever a run carries a per-spindle
      "spindles" breakdown, its reads/seek-page fields must sum exactly to
      the run's global disk stats.
  bench_golden.py recluster <trajectory.json>
      Assert online re-clustering convergence over a
      bench/recluster_convergence capture: the final epoch's read seek
      pages must land within 1.3x of the clustered reference and strictly
      below the unclustered starting point; the back half of the
      trajectory must be monotone-ish (each epoch <= 1.10x its
      predecessor — early epochs may transiently regress while a
      rate-limited prefix of the plan scrambles the unmoved region);
      every epoch must deliver identical rows (moves never lose or
      duplicate objects); and mid-move assembly throughput must stay
      >= 0.8x of epoch 0 (CPU-time rows/sec, so the floor is machine-load
      immune).
  bench_golden.py cache <zipf.json>
      Assert the assembled-object-cache win over a bench/cache_zipf capture:
      every cached run must deliver exactly the rows of the off baseline
      (the Zipf streams are seed-pinned, so a row-count drift means lost or
      duplicated objects), reach a >= 80% hit rate, run >= 3x the off rows/
      sec, and issue fewer disk reads than off.  Floors rather than exact
      diffs: rows/sec is wall-clock, and hit counts shift by a few requests
      with thread interleaving.
"""

import difflib
import json
import sys

# The configuration-identity key and the I/O payload compared by crosscheck.
CROSSCHECK_KEY = ("clustering", "scheduler", "num_complex_objects")
CROSSCHECK_FIELDS = (
    "disk",
    "buffer",
    "assembly",
    "seek_histogram",
    "refetched_pages",
    "avg_seek",
    "avg_write_seek",
)


def strip_nondeterministic(node):
    """Recursively drops object keys ending in `_ns` (timing data)."""
    if isinstance(node, dict):
        return {
            key: strip_nondeterministic(value)
            for key, value in node.items()
            if not key.endswith("_ns")
        }
    if isinstance(node, list):
        return [strip_nondeterministic(item) for item in node]
    return node


def normalize(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    return json.dumps(strip_nondeterministic(data), indent=2, sort_keys=True)


def load_runs(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    runs = {}
    for run in data.get("runs", []):
        if all(field in run for field in CROSSCHECK_KEY):
            key = tuple(run[field] for field in CROSSCHECK_KEY)
            # First occurrence wins (a bench never repeats a configuration
            # except as an explicitly differently-moded run, e.g. the
            # multi-client "independent" baseline — skip those).
            if run.get("mode", "merged") != "merged":
                continue
            runs.setdefault(key, run)
    return runs


def crosscheck(reference_path, run_path):
    reference = load_runs(reference_path)
    actual = load_runs(run_path)
    matched = 0
    failures = 0
    for key, run in sorted(actual.items()):
        if key not in reference:
            continue
        matched += 1
        ref = reference[key]
        for field in CROSSCHECK_FIELDS:
            left = strip_nondeterministic(ref.get(field))
            right = strip_nondeterministic(run.get(field))
            if left != right:
                failures += 1
                sys.stderr.write(
                    f"CROSSCHECK MISMATCH {key} field '{field}':\n"
                    f"  {reference_path}: {json.dumps(left, sort_keys=True)}\n"
                    f"  {run_path}: {json.dumps(right, sort_keys=True)}\n"
                )
    if matched == 0:
        sys.stderr.write(
            f"CROSSCHECK: no overlapping configurations between "
            f"{reference_path} and {run_path}\n"
        )
        return 1
    if failures:
        sys.stderr.write(
            f"CROSSCHECK: {failures} field mismatch(es) across "
            f"{matched} matched configuration(s)\n"
        )
        return 1
    print(f"OK: {matched} configuration(s) of {run_path} match "
          f"{reference_path}")
    return 0


def iobatch_totals(path):
    """Total (reads, seek pages) over the inter-object elevator runs."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    reads = seeks = matched = 0
    for run in data.get("runs", []):
        if (run.get("clustering") == "inter-object"
                and run.get("scheduler") == "elevator"):
            reads += run["disk"]["reads"]
            seeks += run["disk"]["read_seek_pages"]
            matched += 1
    return reads, seeks, matched


def iobatch(seed_path, batched_path):
    seed_reads, seed_seeks, seed_n = iobatch_totals(seed_path)
    run_reads, run_seeks, run_n = iobatch_totals(batched_path)
    if seed_n == 0 or run_n == 0:
        sys.stderr.write(
            f"IOBATCH: no inter-object elevator runs found "
            f"({seed_path}: {seed_n}, {batched_path}: {run_n})\n"
        )
        return 1
    drop = 1.0 - run_reads / seed_reads
    print(
        f"iobatch: reads {seed_reads} -> {run_reads} ({drop:.1%} drop), "
        f"seek pages {seed_seeks} -> {run_seeks}"
    )
    failed = 0
    if drop < 0.30:
        sys.stderr.write(
            f"IOBATCH: read-call drop {drop:.1%} is below the 30% floor\n"
        )
        failed = 1
    if run_seeks > seed_seeks:
        sys.stderr.write(
            f"IOBATCH: total seek pages increased "
            f"({seed_seeks} -> {run_seeks})\n"
        )
        failed = 1
    return failed


def spindles(seed_path, array_path):
    seed = load_runs(seed_path)
    array = load_runs(array_path)
    matched = failures = 0
    seed_seeks_total = array_seeks_total = 0
    for key, run in sorted(array.items()):
        if key not in seed:
            continue
        matched += 1
        ref_disk = seed[key]["disk"]
        run_disk = run["disk"]
        if run_disk["reads"] != ref_disk["reads"]:
            failures += 1
            sys.stderr.write(
                f"SPINDLES {key}: read count changed "
                f"({ref_disk['reads']} -> {run_disk['reads']}); striping "
                f"must never add or remove I/O\n"
            )
        if run_disk["read_seek_pages"] > ref_disk["read_seek_pages"]:
            failures += 1
            sys.stderr.write(
                f"SPINDLES {key}: read seek pages increased "
                f"({ref_disk['read_seek_pages']} -> "
                f"{run_disk['read_seek_pages']})\n"
            )
        seed_seeks_total += ref_disk["read_seek_pages"]
        array_seeks_total += run_disk["read_seek_pages"]
        per_spindle = run.get("spindles")
        if per_spindle:
            for field in ("reads", "read_seek_pages", "writes",
                          "write_seek_pages"):
                total = sum(s.get(field, 0) for s in per_spindle)
                if total != run_disk.get(field, 0):
                    failures += 1
                    sys.stderr.write(
                        f"SPINDLES {key}: per-spindle '{field}' sums to "
                        f"{total}, global says {run_disk.get(field, 0)}\n"
                    )
    if matched == 0:
        sys.stderr.write(
            f"SPINDLES: no overlapping configurations between "
            f"{seed_path} and {array_path}\n"
        )
        return 1
    print(
        f"spindles: {matched} configuration(s), seek pages "
        f"{seed_seeks_total} -> {array_seeks_total}"
    )
    if array_seeks_total >= seed_seeks_total:
        sys.stderr.write(
            f"SPINDLES: aggregate seek pages did not drop "
            f"({seed_seeks_total} -> {array_seeks_total})\n"
        )
        failures += 1
    return 1 if failures else 0


def cache(zipf_path, hit_floor=0.80, speedup_floor=3.0):
    with open(zipf_path, "r", encoding="utf-8") as f:
        data = json.load(f)
    runs = data.get("runs", [])
    off = next((r for r in runs if r.get("policy") == "off"), None)
    cached = [r for r in runs if r.get("policy") != "off"]
    if off is None or not cached:
        sys.stderr.write(
            f"CACHE: {zipf_path} needs an 'off' baseline and at least one "
            f"cached run\n"
        )
        return 1
    failures = 0
    for run in cached:
        policy = run.get("policy", "?")
        if run.get("rows") != off.get("rows"):
            failures += 1
            sys.stderr.write(
                f"CACHE {policy}: delivered {run.get('rows')} rows, off "
                f"baseline delivered {off.get('rows')} — the cache lost or "
                f"duplicated objects\n"
            )
        hit_rate = run.get("hit_rate", 0.0)
        if hit_rate < hit_floor:
            failures += 1
            sys.stderr.write(
                f"CACHE {policy}: hit rate {hit_rate:.3f} below the "
                f"{hit_floor:.0%} floor\n"
            )
        speedup = run.get("speedup_vs_off", 0.0)
        if speedup < speedup_floor:
            failures += 1
            sys.stderr.write(
                f"CACHE {policy}: {speedup:.2f}x rows/sec vs off, floor is "
                f"{speedup_floor:.1f}x\n"
            )
        if run.get("disk_reads", 0) >= off.get("disk_reads", 0):
            failures += 1
            sys.stderr.write(
                f"CACHE {policy}: disk reads did not drop "
                f"({off.get('disk_reads')} -> {run.get('disk_reads')})\n"
            )
        print(
            f"cache {policy}: hit rate {hit_rate:.3f}, {speedup:.2f}x "
            f"rows/sec, disk reads {off.get('disk_reads')} -> "
            f"{run.get('disk_reads')}"
        )
    return 1 if failures else 0


def recluster(trajectory_path, ref_ratio=1.3, regress_ratio=1.10,
              throughput_floor=0.8):
    with open(trajectory_path, "r", encoding="utf-8") as f:
        data = json.load(f)
    ref = data.get("clustered_ref")
    epochs = sorted(
        (r for r in data.get("runs", []) if "epoch" in r),
        key=lambda r: r["epoch"],
    )
    if ref is None or len(epochs) < 2:
        sys.stderr.write(
            f"RECLUSTER: {trajectory_path} needs a clustered_ref and at "
            f"least two epochs (found {len(epochs)}) — was the bench run "
            f"with --recluster off?\n"
        )
        return 1
    seeks = [r["disk"]["read_seek_pages"] for r in epochs]
    print(
        f"recluster: seek pages {seeks[0]} -> {seeks[-1]} over "
        f"{len(epochs)} epochs (clustered ref {ref['read_seek_pages']})"
    )
    failures = 0
    bound = ref_ratio * ref["read_seek_pages"]
    if seeks[-1] > bound:
        failures += 1
        sys.stderr.write(
            f"RECLUSTER: final epoch travels {seeks[-1]} seek pages, above "
            f"{ref_ratio}x the clustered reference ({bound:.0f})\n"
        )
    if seeks[-1] >= seeks[0]:
        failures += 1
        sys.stderr.write(
            f"RECLUSTER: no net improvement ({seeks[0]} -> {seeks[-1]})\n"
        )
    for i in range(len(epochs) // 2, len(epochs) - 1):
        if seeks[i + 1] > regress_ratio * seeks[i]:
            failures += 1
            sys.stderr.write(
                f"RECLUSTER: late-trajectory regression at epoch "
                f"{epochs[i + 1]['epoch']} ({seeks[i]} -> {seeks[i + 1]}, "
                f"allowed {regress_ratio}x)\n"
            )
    rows = {r.get("rows") for r in epochs}
    if len(rows) != 1:
        failures += 1
        sys.stderr.write(
            f"RECLUSTER: row counts drifted across epochs ({sorted(rows)}) "
            f"— the mover lost or duplicated objects\n"
        )
    baseline = epochs[0].get("rows_per_sec", 0.0)
    worst = min(r.get("rows_per_sec", 0.0) for r in epochs)
    if baseline > 0 and worst < throughput_floor * baseline:
        failures += 1
        sys.stderr.write(
            f"RECLUSTER: mid-move throughput fell to {worst:.0f} rows/sec, "
            f"below {throughput_floor}x of epoch 0 ({baseline:.0f})\n"
        )
    return 1 if failures else 0


def main(argv):
    if len(argv) == 3 and argv[1] == "cache":
        return cache(argv[2])
    if len(argv) == 3 and argv[1] == "recluster":
        return recluster(argv[2])
    if len(argv) != 4 or argv[1] not in ("extract", "check", "crosscheck",
                                         "iobatch", "spindles"):
        sys.stderr.write(__doc__)
        return 2
    mode, a, b = argv[1], argv[2], argv[3]
    if mode == "iobatch":
        return iobatch(a, b)
    if mode == "spindles":
        return spindles(a, b)
    if mode == "extract":
        with open(b, "w", encoding="utf-8") as f:
            f.write(normalize(a) + "\n")
        print(f"wrote {b}")
        return 0
    if mode == "crosscheck":
        return crosscheck(a, b)
    golden = normalize(a).splitlines(keepends=True)
    actual = normalize(b).splitlines(keepends=True)
    if golden == actual:
        print(f"OK: {b} matches {a}")
        return 0
    sys.stderr.write(f"MISMATCH: {b} differs from golden {a}\n")
    sys.stderr.writelines(
        difflib.unified_diff(golden, actual, fromfile=a, tofile=b)
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
