// obs_dump: live observability rendering for the query service.
//
// Drives a multi-client assembly workload through a QueryService over an
// AsyncDisk + sharded buffer pool — the same stack bench/multi_client
// measures — while a sampler thread takes obs::Snapshots of the running
// system.  The output is what a dashboard would show: in-flight queries
// with their attributed I/O so far, per-client cumulative totals,
// buffer-pool residency, the flight recorder's recent events, and any
// slow-query reports the run left.
//
// Text (default) renders the snapshots and reports; --json writes one
// machine-readable document with the same content.
//
// Flags: --clients K   concurrent clients          (default 4)
//        --size N      complex objects             (default 500)
//        --io-batch B  vectored-I/O run length     (default 1)
//        --slow-ns T   slow-query threshold in ns  (default 1: report all)
//        --recluster   run the background page mover under the workload
//                      and render its view: swaps applied, sketch
//                      occupancy, forwarding size, per-round seek trend
//        --json PATH   JSON output instead of text

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/snapshot.h"
#include "service/query_service.h"
#include "storage/async_disk.h"
#include "storage/recluster/affinity.h"
#include "storage/recluster/forwarding.h"
#include "storage/recluster/mover.h"

namespace {

using namespace cobra;         // NOLINT: tool brevity
using namespace cobra::bench;  // NOLINT

struct Flags {
  size_t clients = 4;
  size_t size = 500;
  size_t io_batch = 1;
  uint64_t slow_ns = 1;
  bool recluster = false;
  std::string json_path;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  auto value_of = [&](const std::string& arg, const char* name,
                      int* i) -> const char* {
    std::string prefix = std::string(name) + "=";
    if (arg == name && *i + 1 < argc) return argv[++*i];
    if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (const char* v = value_of(arg, "--clients", &i)) {
      flags.clients = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--size", &i)) {
      flags.size = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--io-batch", &i)) {
      flags.io_batch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--slow-ns", &i)) {
      flags.slow_ns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--json", &i)) {
      flags.json_path = v;
    } else if (arg == "--recluster") {
      flags.recluster = true;
    }
  }
  if (flags.clients == 0) flags.clients = 1;
  if (flags.size == 0) flags.size = 1;
  if (flags.io_batch == 0) flags.io_batch = 1;
  return flags;
}

std::vector<Oid> RootSlice(const std::vector<Oid>& roots, size_t i,
                           size_t k) {
  size_t n = roots.size();
  return std::vector<Oid>(roots.begin() + n * i / k,
                          roots.begin() + n * (i + 1) / k);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  AcobOptions options;
  options.num_complex_objects = flags.size;
  options.clustering = Clustering::kUnclustered;
  options.seed = 42;
  auto db = MustBuild(options);
  if (auto s = db->ColdRestart(); !s.ok()) {
    std::fprintf(stderr, "cold restart failed: %s\n", s.ToString().c_str());
    return 1;
  }

  AssemblyOptions aopts;
  aopts.window_size = 50;
  aopts.scheduler = SchedulerKind::kElevator;
  aopts.io_batch_pages = flags.io_batch;

  AsyncDisk async(db->disk.get());
  async.set_max_run_pages(flags.io_batch);
  BufferManager pool(&async,
                     BufferOptions{db->options.buffer_frames,
                                   db->options.replacement, db->options.retry,
                                   4 * flags.clients});

  // --recluster: the online re-clustering loop runs under the workload —
  // the sketch learns from the live disk event stream, the daemon moves
  // pages between (and during) rounds, and the tool renders its view.
  recluster::PageForwarding forwarding;
  recluster::AffinitySketch sketch;
  recluster::AffinityDiskListener learner(&sketch, &forwarding);
  if (flags.recluster) {
    pool.set_forwarding(&forwarding);
    db->disk->set_listener(&learner);
  }

  obs::JsonValue doc = obs::JsonValue::MakeObject();
  doc.Set("tool", "obs_dump");
  doc.Set("clients", flags.clients);
  doc.Set("size", flags.size);
  doc.Set("recluster", flags.recluster);
  obs::JsonValue live_samples = obs::JsonValue::MakeArray();
  std::string live_text;

  {
    service::ServiceOptions sopts;
    sopts.num_workers = flags.clients;
    sopts.async_disk = &async;
    sopts.slow_query_ns = flags.slow_ns;
    service::QueryService service(&pool, db->directory.get(), sopts);

    recluster::PageMover mover(&pool, &forwarding);
    recluster::DaemonOptions dopts;
    dopts.data_pages = db->data_pages;
    dopts.swaps_per_cycle = 32;
    dopts.cycle_sleep = std::chrono::milliseconds(1);
    recluster::ReclusterDaemon daemon(&mover, &sketch, &forwarding, dopts);
    if (flags.recluster) {
      daemon.set_exclusion([&](const std::function<void()>& fn) {
        service.WithReadLock(fn);
      });
      daemon.Start();
    }

    // With re-clustering on, run the root set twice: round 0 is the
    // unclustered baseline the sketch learns from, round 1 rides the moved
    // layout — the per-round seek totals are the convergence headline.
    std::vector<uint64_t> round_seek_pages;
    const size_t rounds = flags.recluster ? 2 : 1;
    for (size_t round = 0; round < rounds; ++round) {
      const uint64_t seeks_before = db->disk->stats().read_seek_pages;

      std::vector<std::future<service::QueryResult>> futures;
      futures.reserve(flags.clients);
      for (size_t c = 0; c < flags.clients; ++c) {
        service::QueryJob job;
        job.client = "c" + std::to_string(c);
        job.tmpl = &db->tmpl;
        job.roots = RootSlice(db->roots, c, flags.clients);
        job.assembly = aopts;
        futures.push_back(service.Submit(std::move(job)));
      }

      // Sampler: snapshot the live system while queries run.  Best effort
      // — a fast run may finish before any mid-flight sample lands.
      while (service.active_jobs() > 0) {
        obs::Snapshot snapshot = service.TakeSnapshot();
        if (!snapshot.in_flight.empty()) {
          live_samples.Append(snapshot.ToJson());
          live_text += snapshot.ToText();
          live_text += "\n";
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }

      for (auto& future : futures) {
        service::QueryResult result = future.get();
        if (!result.status.ok()) {
          std::fprintf(stderr, "client %s failed: %s\n",
                       result.client.c_str(),
                       result.status.ToString().c_str());
          return 1;
        }
      }
      service.Drain();
      round_seek_pages.push_back(db->disk->stats().read_seek_pages -
                                 seeks_before);
      // Give the daemon a beat to finish converging the quiet layout
      // before the measured second round.
      if (flags.recluster && round + 1 < rounds) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (flags.recluster) daemon.Stop();

    obs::Snapshot final_snapshot = service.TakeSnapshot();
    std::vector<obs::SlowQueryReport> reports = service.slow_reports();

    obs::JsonValue recluster_view = obs::JsonValue::MakeObject();
    std::string recluster_text;
    if (flags.recluster) {
      const recluster::MoverStats mstats = mover.stats();
      const obs::QueryIoSnapshot mio = mover.io();
      recluster_view.Set("daemon_cycles", daemon.cycles());
      recluster_view.Set("swaps_applied", mstats.swaps_applied);
      recluster_view.Set("pages_moved", mstats.pages_moved);
      recluster_view.Set("skipped_uncommitted", mstats.skipped_uncommitted);
      recluster_view.Set("mover_disk_writes", mio.disk_writes);
      recluster_view.Set("mover_disk_reads", mio.disk_reads);
      recluster_view.Set("sketch_edges", sketch.edge_count());
      recluster_view.Set("sketch_occupancy", sketch.occupancy());
      recluster_view.Set("sketch_observations", sketch.observations());
      recluster_view.Set("forwarding_size", forwarding.size());
      obs::JsonValue seeks = obs::JsonValue::MakeArray();
      for (uint64_t pages : round_seek_pages) seeks.Append(pages);
      recluster_view.Set("round_read_seek_pages", std::move(seeks));

      char line[256];
      std::snprintf(line, sizeof(line),
                    "-- recluster --\n"
                    "cycles %llu, swaps %llu (pages %llu, skipped "
                    "uncommitted %llu), mover io r/w %llu/%llu\n"
                    "sketch: %zu edges (%.1f%% full, %llu observations), "
                    "forwarding: %zu pages displaced\n",
                    static_cast<unsigned long long>(daemon.cycles()),
                    static_cast<unsigned long long>(mstats.swaps_applied),
                    static_cast<unsigned long long>(mstats.pages_moved),
                    static_cast<unsigned long long>(
                        mstats.skipped_uncommitted),
                    static_cast<unsigned long long>(mio.disk_reads),
                    static_cast<unsigned long long>(mio.disk_writes),
                    sketch.edge_count(), 100.0 * sketch.occupancy(),
                    static_cast<unsigned long long>(sketch.observations()),
                    forwarding.size());
      recluster_text = line;
      recluster_text += "seek pages by round:";
      for (uint64_t pages : round_seek_pages) {
        recluster_text += " " + std::to_string(pages);
      }
      recluster_text += "\n";
    }

    if (!flags.json_path.empty()) {
      doc.Set("live", std::move(live_samples));
      doc.Set("final", final_snapshot.ToJson());
      doc.Set("flight", service.flight_recorder().ToJson());
      obs::JsonValue report_array = obs::JsonValue::MakeArray();
      for (const obs::SlowQueryReport& report : reports) {
        report_array.Append(report.ToJson());
      }
      doc.Set("slow_reports", std::move(report_array));
      doc.Set("registry", service.registry().ToJson());
      if (flags.recluster) {
        doc.Set("recluster_view", std::move(recluster_view));
      }
      if (auto s = obs::WriteJsonFile(flags.json_path, doc); !s.ok()) {
        std::fprintf(stderr, "writing %s failed: %s\n",
                     flags.json_path.c_str(), s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", flags.json_path.c_str());
    } else {
      if (!live_text.empty()) {
        std::printf("-- live samples --\n%s", live_text.c_str());
      }
      std::printf("-- final --\n%s", final_snapshot.ToText().c_str());
      if (!recluster_text.empty()) {
        std::printf("\n%s", recluster_text.c_str());
      }
      std::printf("\n-- flight recorder: %zu events retained",
                  service.flight_recorder().Events().size());
      if (service.flight_recorder().dropped() > 0) {
        std::printf(" (%llu dropped)",
                    static_cast<unsigned long long>(
                        service.flight_recorder().dropped()));
      }
      std::printf(" --\n");
      for (const obs::SlowQueryReport& report : reports) {
        std::printf("\n%s", report.ToText().c_str());
      }
    }
  }
  async.Drain();
  return 0;
}
