// wal_dump: render a write-ahead-log extent for humans.
//
// Reads a saved disk image (SimulatedDisk::SaveTo format), scans the log
// extent with the same ScanLog recovery uses, and prints the page framing
// (CRC status, used bytes, epoch, batch boundaries) followed by every
// durable record (LSN, type, transaction, target page/slot, payload size).
// A torn tail — the page or batch recovery would discard — is flagged with
// the scanner's reason.
//
//   wal_dump <image> --log-first P [--log-pages N] [--json]
//   wal_dump --selftest
//
// --json replaces the tables with one machine-readable document on stdout:
//
//   {"log_first": ..., "log_pages": ...,
//    "pages":   [{"page": ..., "crc_ok": ..., "used": ..., "continues": ...,
//                 "epoch": ..., "batch_first_lsn": ...}, ...],
//    "records": [{"lsn": ..., "type": ..., "txn": ..., "page": ...,
//                 "slot": ..., "payload_bytes": ...}, ...],
//    "summary": {"records": ..., "complete_batches": ..., "epoch": ...,
//                "next_lsn": ..., "torn_tail": ..., "tail_reason": ...}}
//
// --selftest needs no image: it builds a small logged workload in memory,
// dumps it, then tears the tail and verifies the dump flags exactly the
// final batch — in both the table and the JSON renderings (the JSON is
// parsed back and its summary asserted).  CI runs it as a smoke test of
// the tool, ScanLog, and the JSON framing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "storage/disk.h"
#include "wal/log_record.h"
#include "wal/wal.h"

namespace {

using namespace cobra;  // NOLINT: tool brevity

struct Flags {
  std::string image;
  PageId log_first = 0;
  bool log_first_set = false;
  size_t log_pages = 4096;
  bool selftest = false;
  bool json = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  auto value_of = [&](const std::string& arg, const char* name,
                      int* i) -> const char* {
    std::string prefix = std::string(name) + "=";
    if (arg == name && *i + 1 < argc) return argv[++*i];
    if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selftest") {
      flags.selftest = true;
    } else if (arg == "--json") {
      flags.json = true;
    } else if (const char* v = value_of(arg, "--log-first", &i)) {
      flags.log_first = std::strtoull(v, nullptr, 10);
      flags.log_first_set = true;
    } else if (const char* v = value_of(arg, "--log-pages", &i)) {
      flags.log_pages = std::strtoull(v, nullptr, 10);
    } else if (arg.rfind("--", 0) != 0) {
      flags.image = arg;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// Page-by-page framing: what the scanner sees before it trusts a batch.
void DumpPageFrames(SimulatedDisk* disk, PageId first, size_t max_pages) {
  std::printf("page      crc   used  cont  epoch  batch_first_lsn\n");
  std::vector<std::byte> raw(disk->page_size());
  for (size_t i = 0; i < max_pages; ++i) {
    PageId id = first + i;
    if (!disk->Exists(id)) break;
    if (!disk->ReadPage(id, raw.data()).ok()) break;
    wal::LogPageHeader header;
    if (!wal::ReadLogPage(raw.data(), raw.size(), &header)) {
      std::printf("%-8llu  BAD   -     -     -      -\n",
                  static_cast<unsigned long long>(id));
      break;  // the scan stops at the first bad frame too
    }
    std::printf("%-8llu  ok    %-4u  %-4s  %-5u  %llu\n",
                static_cast<unsigned long long>(id), header.used,
                header.continues ? "yes" : "no", header.epoch,
                static_cast<unsigned long long>(header.batch_first_lsn));
  }
}

void DumpRecords(const wal::LogScanResult& scan) {
  std::printf("\nlsn       type         txn   page      slot  payload\n");
  for (const wal::LogRecord& record : scan.records) {
    std::printf("%-8llu  %-11s  %-4llu  %-8llu  %-4u  %zu\n",
                static_cast<unsigned long long>(record.lsn),
                wal::LogRecordTypeName(record.type),
                static_cast<unsigned long long>(record.txn),
                record.page == kInvalidPageId
                    ? 0ULL
                    : static_cast<unsigned long long>(record.page),
                record.slot, record.payload.size());
  }
  std::printf("\n%zu records, %zu complete batches, epoch %u, next lsn %llu\n",
              scan.records.size(), scan.complete_batches, scan.epoch,
              static_cast<unsigned long long>(scan.next_lsn));
  if (scan.torn_tail) {
    std::printf("TORN TAIL: %s (recovery discards everything past the last "
                "complete batch)\n",
                scan.tail_note.c_str());
  } else if (!scan.tail_note.empty()) {
    std::printf("log end: %s\n", scan.tail_note.c_str());
  }
}

wal::LogScanResult Dump(SimulatedDisk* disk, PageId first, size_t max_pages) {
  DumpPageFrames(disk, first, max_pages);
  wal::LogScanResult scan = wal::ScanLog(disk, first, max_pages);
  DumpRecords(scan);
  return scan;
}

// The --json rendering: same framing and record walk as the tables, one
// parseable document.
obs::JsonValue JsonPageFrames(SimulatedDisk* disk, PageId first,
                              size_t max_pages) {
  obs::JsonValue pages = obs::JsonValue::MakeArray();
  std::vector<std::byte> raw(disk->page_size());
  for (size_t i = 0; i < max_pages; ++i) {
    PageId id = first + i;
    if (!disk->Exists(id)) break;
    if (!disk->ReadPage(id, raw.data()).ok()) break;
    obs::JsonValue frame = obs::JsonValue::MakeObject();
    frame.Set("page", id);
    wal::LogPageHeader header;
    if (!wal::ReadLogPage(raw.data(), raw.size(), &header)) {
      frame.Set("crc_ok", false);
      pages.Append(std::move(frame));
      break;  // the scan stops at the first bad frame too
    }
    frame.Set("crc_ok", true);
    frame.Set("used", header.used);
    frame.Set("continues", header.continues);
    frame.Set("epoch", header.epoch);
    frame.Set("batch_first_lsn", header.batch_first_lsn);
    pages.Append(std::move(frame));
  }
  return pages;
}

obs::JsonValue JsonDump(SimulatedDisk* disk, PageId first, size_t max_pages,
                        wal::LogScanResult* scan_out = nullptr) {
  obs::JsonValue doc = obs::JsonValue::MakeObject();
  doc.Set("log_first", first);
  doc.Set("log_pages", max_pages);
  doc.Set("pages", JsonPageFrames(disk, first, max_pages));
  wal::LogScanResult scan = wal::ScanLog(disk, first, max_pages);
  obs::JsonValue records = obs::JsonValue::MakeArray();
  for (const wal::LogRecord& record : scan.records) {
    obs::JsonValue r = obs::JsonValue::MakeObject();
    r.Set("lsn", record.lsn);
    r.Set("type", wal::LogRecordTypeName(record.type));
    r.Set("txn", record.txn);
    r.Set("page", record.page == kInvalidPageId ? uint64_t{0} : record.page);
    r.Set("slot", record.slot);
    r.Set("payload_bytes", record.payload.size());
    records.Append(std::move(r));
  }
  doc.Set("records", std::move(records));
  obs::JsonValue summary = obs::JsonValue::MakeObject();
  summary.Set("records", scan.records.size());
  summary.Set("complete_batches", scan.complete_batches);
  summary.Set("epoch", scan.epoch);
  summary.Set("next_lsn", scan.next_lsn);
  summary.Set("torn_tail", scan.torn_tail);
  summary.Set("tail_reason", scan.tail_note);
  doc.Set("summary", std::move(summary));
  if (scan_out != nullptr) *scan_out = std::move(scan);
  return doc;
}

constexpr PageId kSelftestLogFirst = 64;
constexpr size_t kSelftestLogPages = 64;

// Serializes `doc`, parses it back, and asserts the summary matches the
// expected scan outcome — the machine-readable contract CI relies on.
bool CheckJsonDump(const obs::JsonValue& doc, bool torn, int64_t records,
                   int64_t batches) {
  auto parsed = obs::JsonValue::Parse(doc.Dump(2));
  if (!parsed.ok()) return false;
  const obs::JsonValue* pages = parsed->Find("pages");
  if (pages == nullptr || !pages->is_array() || pages->size() == 0) {
    return false;
  }
  const obs::JsonValue* recs = parsed->Find("records");
  if (recs == nullptr || !recs->is_array() ||
      recs->size() != static_cast<size_t>(records)) {
    return false;
  }
  const obs::JsonValue* summary = parsed->Find("summary");
  if (summary == nullptr || !summary->is_object()) return false;
  const obs::JsonValue* t = summary->Find("torn_tail");
  const obs::JsonValue* r = summary->Find("records");
  const obs::JsonValue* b = summary->Find("complete_batches");
  const obs::JsonValue* reason = summary->Find("tail_reason");
  if (t == nullptr || !t->is_bool() || t->AsBool() != torn) return false;
  if (r == nullptr || !r->is_int() || r->AsInt() != records) return false;
  if (b == nullptr || !b->is_int() || b->AsInt() != batches) return false;
  // A torn tail must carry the scanner's reason.  (An intact log may still
  // have a benign end-of-log note, so only the torn side is asserted.)
  if (reason == nullptr || !reason->is_string()) return false;
  if (torn && reason->AsString().empty()) return false;
  return true;
}

int Selftest() {
  SimulatedDisk disk;
  {
    wal::WalOptions options;
    options.log_first_page = kSelftestLogFirst;
    options.log_max_pages = kSelftestLogPages;
    wal::WalManager wal(&disk, options);
    if (!wal.Recover().ok()) return 1;
    std::vector<std::byte> body(48);
    for (size_t i = 0; i < body.size(); ++i) {
      body[i] = static_cast<std::byte>(i * 7);
    }
    for (int t = 0; t < 2; ++t) {  // two committed single-insert batches
      auto txn = wal.Begin();
      if (!txn.ok()) return 1;
      if (!wal.LogHeapInsert(*txn, 0, static_cast<uint16_t>(t), body).ok()) {
        return 1;
      }
      if (!wal.Commit(*txn).ok()) return 1;
    }
  }

  std::printf("== selftest: intact log ==\n");
  wal::LogScanResult intact =
      Dump(&disk, kSelftestLogFirst, kSelftestLogPages);
  if (intact.torn_tail || intact.records.size() != 6 ||
      intact.complete_batches != 2) {
    std::fprintf(stderr, "selftest: intact log mis-scanned\n");
    return 1;
  }
  if (!CheckJsonDump(JsonDump(&disk, kSelftestLogFirst, kSelftestLogPages),
                     /*torn=*/false, /*records=*/6, /*batches=*/2)) {
    std::fprintf(stderr, "selftest: intact JSON dump malformed\n");
    return 1;
  }

  // Corrupt the last written page inside its used payload: the dump must
  // flag a torn tail and keep exactly the first batch.
  std::vector<std::byte> raw(disk.page_size());
  if (!disk.ReadPage(intact.next_page - 1, raw.data()).ok()) return 1;
  raw[wal::kLogPageHeaderSize + 3] ^= std::byte{0x20};
  if (!disk.WritePage(intact.next_page - 1, raw.data()).ok()) return 1;

  std::printf("\n== selftest: torn tail ==\n");
  wal::LogScanResult torn = Dump(&disk, kSelftestLogFirst, kSelftestLogPages);
  if (!torn.torn_tail || torn.records.size() != 3 ||
      torn.complete_batches != 1) {
    std::fprintf(stderr, "selftest: torn tail not flagged\n");
    return 1;
  }
  if (!CheckJsonDump(JsonDump(&disk, kSelftestLogFirst, kSelftestLogPages),
                     /*torn=*/true, /*records=*/3, /*batches=*/1)) {
    std::fprintf(stderr, "selftest: torn-tail JSON dump malformed\n");
    return 1;
  }
  std::printf("\nselftest passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.selftest) return Selftest();
  if (flags.image.empty() || !flags.log_first_set) {
    std::fprintf(stderr,
                 "usage: wal_dump <image> --log-first P [--log-pages N] "
                 "[--json]\n"
                 "       wal_dump --selftest\n");
    return 2;
  }
  auto disk = SimulatedDisk::LoadFrom(flags.image);
  if (!disk.ok()) {
    std::fprintf(stderr, "loading %s failed: %s\n", flags.image.c_str(),
                 disk.status().ToString().c_str());
    return 1;
  }
  if (flags.json) {
    obs::JsonValue doc =
        JsonDump(disk->get(), flags.log_first, flags.log_pages);
    doc.Set("image", flags.image);
    std::printf("%s\n", doc.Dump(2).c_str());
    return 0;
  }
  Dump(disk->get(), flags.log_first, flags.log_pages);
  return 0;
}
